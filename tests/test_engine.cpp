// Tests for pobp::Engine / pobp::Session (the batch-solve runtime), the
// Expected-based checked entry points, and the engine metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

std::vector<JobSet> corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 10 + 3 * i;
    config.max_length = 1 << 6;
    config.horizon = 1 << 12;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

/// Bit-exact fingerprint of a result: the serialized schedule plus the two
/// values (CSV keeps every segment, machine and order).
std::string fingerprint(const ScheduleResult& r) {
  return io::schedule_to_csv(r.schedule) + "|" + std::to_string(r.value) +
         "|" + std::to_string(r.unbounded_value);
}

/// A steal-heavy batch: one giant instance first, then a mixed tail of small
/// ones.  Whichever worker owns shard 0 is pinned on the giant instance
/// while the others drain their shards and start stealing — the worst case
/// for the sharded deque scheduler.
std::vector<JobSet> skewed_corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  JobGenConfig giant;
  giant.n = 220;
  giant.max_length = 1 << 7;
  giant.horizon = 1 << 13;
  instances.push_back(random_jobs(giant, rng));
  for (std::size_t i = 1; i < count; ++i) {
    JobGenConfig config;
    config.n = 12 + (i % 7) * 6;
    config.max_length = 1 << 6;
    config.horizon = 1 << 12;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

// ------------------------------------------------------ determinism -------

// The acceptance bar of the engine: solve_batch must be bit-identical to
// the sequential one-call path for every worker count.
TEST(Engine, BatchMatchesSequentialForEveryWorkerCount) {
  const std::vector<JobSet> instances = corpus(12, 77);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(
        fingerprint(try_schedule_bounded(jobs, schedule).value()));
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Engine engine({.schedule = schedule, .workers = workers});
    const std::vector<ScheduleResult> results = engine.solve_batch(instances, {});
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << "instance " << i << " diverged with " << workers << " workers";
    }
  }
}

// for_each_result is deprecated (use StreamEngine::submit or
// SubmitOptions::on_error) but must keep working until removal.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Engine, ForEachResultVisitsEveryIndexOnce) {
  const std::vector<JobSet> instances = corpus(9, 5);
  Engine engine({.schedule = {.k = 1}, .workers = 4});

  std::set<std::size_t> seen;
  std::size_t calls = 0;
  engine.for_each_result(instances,
                         [&](std::size_t index, const ScheduleResult& r) {
                           ++calls;
                           seen.insert(index);
                           EXPECT_TRUE(
                               validate(instances[index], r.schedule, 1).ok);
                         });
  EXPECT_EQ(calls, instances.size());
  EXPECT_EQ(seen.size(), instances.size());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), instances.size() - 1);
}
#pragma GCC diagnostic pop

TEST(Engine, SingleSolveMatchesBatchOfOne) {
  const std::vector<JobSet> instances = corpus(1, 13);
  Engine engine({.schedule = {.k = 2}});
  const ScheduleResult lone = engine.solve(instances[0]);
  const std::vector<ScheduleResult> batch = engine.solve_batch(instances, {});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(fingerprint(lone), fingerprint(batch[0]));
}

// ----------------------------------------------------- work stealing ------

// The acceptance bar of the work-stealing scheduler: a 256-instance batch
// whose first instance dwarfs the rest forces heavy stealing (the owner of
// shard 0 is stuck on the giant while everyone else goes idle and starts
// raiding), and the results must still be byte-identical to the 1-worker
// run at every worker count — including counts far above the core count.
TEST(EngineStealing, SkewedBatchBitIdenticalAcrossWorkerCounts) {
  const std::vector<JobSet> instances = skewed_corpus(256, 20180616);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  {
    Engine engine({.schedule = schedule, .workers = 1});
    for (const ScheduleResult& r : engine.solve_batch(instances, {})) {
      expected.push_back(fingerprint(r));
    }
  }

  for (const std::size_t workers : {2u, 3u, 8u, 16u}) {
    Engine engine({.schedule = schedule, .workers = workers});
    std::vector<ScheduleResult> results;
    engine.solve_batch_into(instances, {}, results);
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << "instance " << i << " diverged with " << workers << " workers";
    }
    EXPECT_EQ(engine.metrics().instances, instances.size());
  }
}

// The intra-solve TM fan-out is a pure parallelisation: forcing it on for
// every multi-root forest (threshold 1) or turning it off entirely (0) must
// not change a single bit of any result, nested inside batch workers or not.
TEST(EngineStealing, TmForkThresholdDoesNotChangeResults) {
  const std::vector<JobSet> instances = skewed_corpus(48, 909);
  ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  {
    Engine engine({.schedule = schedule, .workers = 1});
    for (const ScheduleResult& r : engine.solve_batch(instances, {})) {
      expected.push_back(fingerprint(r));
    }
  }

  for (const std::size_t fork_min : {std::size_t{0}, std::size_t{1}}) {
    for (const std::size_t workers : {1u, 8u}) {
      ScheduleOptions forked = schedule;
      forked.tm_fork_min_nodes = fork_min;
      Engine engine({.schedule = forked, .workers = workers});
      const std::vector<ScheduleResult> results =
          engine.solve_batch(instances, {});
      ASSERT_EQ(results.size(), instances.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(fingerprint(results[i]), expected[i])
            << "instance " << i << " diverged with fork_min_nodes="
            << fork_min << ", " << workers << " workers";
      }
    }
  }
}

// Degraded outcomes ride the same determinism contract: which instances
// exhaust the op budget — and the approximate schedules they fall back to —
// must be identical for every worker count.
TEST(EngineStealing, DegradedOutcomesIdenticalAcrossWorkerCounts) {
  const std::vector<JobSet> instances = skewed_corpus(48, 31337);
  EngineOptions base;
  base.schedule = {.k = 1, .machine_count = 2};
  // ~1455 ops for the giant instance, <= 325 for every small one (measured
  // on this corpus): 800 splits the batch into degraded + clean halves.
  base.budget = {.max_ops = 800};
  base.degrade = DegradePolicy::kApproximate;

  std::vector<std::string> expected;
  std::vector<bool> degraded;
  {
    EngineOptions options = base;
    options.workers = 1;
    Engine engine(options);
    for (const ScheduleResult& r : engine.solve_batch(instances, {})) {
      expected.push_back(fingerprint(r));
      degraded.push_back(r.degraded);
    }
  }
  // The budget is sized so the batch is genuinely mixed: the giant instance
  // must exhaust it and degrade, the small tail must not.
  EXPECT_TRUE(degraded[0]);
  EXPECT_FALSE(std::all_of(degraded.begin(), degraded.end(),
                           [](bool d) { return d; }));

  for (const std::size_t workers : {2u, 3u, 8u}) {
    EngineOptions options = base;
    options.workers = workers;
    Engine engine(options);
    const std::vector<ScheduleResult> results = engine.solve_batch(instances, {});
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].degraded, degraded[i])
          << "instance " << i << " degrade outcome flipped with " << workers
          << " workers";
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << "instance " << i << " diverged with " << workers << " workers";
    }
  }
}

// --------------------------------------------------------- sessions -------

TEST(Session, ReusedAcrossInstancesAccumulatesMetrics) {
  const std::vector<JobSet> instances = corpus(4, 3);
  Session session({.schedule = {.k = 1}});
  std::size_t jobs_total = 0;
  for (const JobSet& jobs : instances) {
    const ScheduleResult r = session.solve(jobs);
    EXPECT_TRUE(validate(jobs, r.schedule, 1).ok);
    jobs_total += jobs.size();
  }
  const EngineMetrics& m = session.metrics();
  EXPECT_EQ(m.instances, instances.size());
  EXPECT_EQ(m.jobs_seen, jobs_total);
  EXPECT_EQ(m.validation_failures, 0u);
  EXPECT_EQ(m.solve_seconds.count(), instances.size());
  EXPECT_GT(m.value_bounded, 0);
  EXPECT_GE(m.value_unbounded, m.value_bounded);

  session.reset_metrics();
  EXPECT_EQ(session.metrics().instances, 0u);
}

TEST(Session, PerCallOptionsOverrideConstructorOptions) {
  const std::vector<JobSet> instances = corpus(1, 9);
  Session session({.schedule = {.k = 1}});
  const ScheduleResult k1 = session.solve(instances[0]);
  const ScheduleResult k0 = session.solve(instances[0], {.k = 0});
  EXPECT_LE(k0.schedule.max_preemptions(), 0u);
  EXPECT_TRUE(validate(instances[0], k1.schedule, 1).ok);
  EXPECT_TRUE(validate(instances[0], k0.schedule, 0).ok);
}

// The harvest pattern: one ScheduleResult reused across solve_into calls
// (its pooled schedule storage recycled between instances of very different
// sizes) must match fresh Session::solve results exactly.
TEST(Session, SolveIntoRecyclesResultStorage) {
  const std::vector<JobSet> instances = skewed_corpus(8, 2024);
  Session reusing({.schedule = {.k = 1, .machine_count = 2}});
  Session fresh({.schedule = {.k = 1, .machine_count = 2}});
  ScheduleResult recycled;
  for (const JobSet& jobs : instances) {
    reusing.solve_into(jobs, recycled);
    EXPECT_EQ(fingerprint(recycled), fingerprint(fresh.solve(jobs)));
    EXPECT_TRUE(validate(jobs, recycled.schedule, 1).ok);
  }
  // Per-call option overrides flow through the into-form too.
  reusing.solve_into(instances[1], {.k = 0}, recycled);
  EXPECT_LE(recycled.schedule.max_preemptions(), 0u);
  EXPECT_TRUE(validate(instances[1], recycled.schedule, 0).ok);
}

// solve_batch_into across big -> small -> big batches: the results vector
// (and every pooled schedule inside it) is recycled, never reallocated from
// scratch, and the answers must match the allocating solve_batch path.
TEST(Engine, SolveBatchIntoReusesResultsVector) {
  const std::vector<JobSet> big = skewed_corpus(24, 5150);
  const std::vector<JobSet> small = corpus(5, 61);
  Engine engine({.schedule = {.k = 1, .machine_count = 2}, .workers = 4});
  Engine reference({.schedule = {.k = 1, .machine_count = 2}, .workers = 1});

  std::vector<ScheduleResult> results;
  for (const std::vector<JobSet>* batch : {&big, &small, &big}) {
    engine.solve_batch_into(*batch, {}, results);
    ASSERT_EQ(results.size(), batch->size());
    const std::vector<ScheduleResult> expected =
        reference.solve_batch(*batch, {});
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), fingerprint(expected[i]))
          << "instance " << i << " diverged after vector reuse";
    }
  }
}

TEST(Session, EmptyInstanceSolvesToEmptySchedule) {
  Session session;
  const ScheduleResult r = session.solve(JobSet{});
  EXPECT_EQ(r.schedule.job_count(), 0u);
  EXPECT_EQ(r.value, 0);
  EXPECT_DOUBLE_EQ(r.price(), 1.0);
  EXPECT_EQ(session.metrics().instances, 1u);
}

// ---------------------------------------------------------- metrics -------

TEST(EngineMetrics, SnapshotMergesWorkerShards) {
  const std::vector<JobSet> instances = corpus(10, 21);
  Engine engine({.schedule = {.k = 1}, .workers = 3});
  (void)engine.solve_batch(instances, {});

  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.instances, instances.size());
  EXPECT_EQ(m.validation_failures, 0u);
  EXPECT_GT(m.batch_seconds, 0.0);
  EXPECT_GT(m.instances_per_second(), 0.0);
  // Every instance went through seed + validate; strict/lax branch stages
  // are recorded per instance too (k >= 1 path).
  EXPECT_EQ(m.stage_seconds[static_cast<std::size_t>(Stage::kSeed)].count(),
            instances.size());
  EXPECT_EQ(
      m.stage_seconds[static_cast<std::size_t>(Stage::kValidate)].count(),
      instances.size());
  EXPECT_EQ(m.price_histogram.total(), m.price.count());
  EXPECT_EQ(m.value_histogram.total(), instances.size());

  engine.reset_metrics();
  EXPECT_EQ(engine.metrics().instances, 0u);
}

TEST(EngineMetrics, ExportsAreNonEmptyAndNamed) {
  const std::vector<JobSet> instances = corpus(3, 41);
  Engine engine({.schedule = {.k = 1}, .workers = 2});
  (void)engine.solve_batch(instances, {});

  const std::string table = engine.metrics().to_table();
  EXPECT_NE(table.find("instances"), std::string::npos);
  EXPECT_NE(table.find("seed"), std::string::npos);

  const std::string json = engine.metrics().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"instances\":3"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Histogram, BucketsAndMerge) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);   // < 1
  h.add(1.0);   // [1, 2)
  h.add(3.0);   // [2, 4)
  h.add(100);   // >= 4
  EXPECT_EQ(h.counts(), (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.bucket_label(0), "< 1.000");
  EXPECT_EQ(h.bucket_label(3), ">= 4.000");

  Histogram other({1.0, 2.0, 4.0});
  other.add(1.5);
  h.merge(other);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[1], 2u);
}

// ------------------------------------------- checked entry points ---------

TEST(TrySchedule, RejectsZeroMachines) {
  JobSet jobs;
  jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  const auto result = try_schedule_bounded(jobs, {.machine_count = 0});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().count("POBP-OPT-001"), 1u);
}

TEST(TrySchedule, RejectsExactSeedAboveJobLimit) {
  Rng rng(7);
  JobGenConfig config;
  config.n = kExactSeedJobLimit + 1;
  const JobSet jobs = random_jobs(config, rng);
  const auto result =
      try_schedule_bounded(jobs, {.seed = ScheduleOptions::Seed::kExact});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().count("POBP-OPT-002"), 1u);
}

TEST(TrySchedule, AcceptsGoodOptionsAndSolves) {
  const std::vector<JobSet> instances = corpus(1, 99);
  const auto result = try_schedule_bounded(instances[0], {.k = 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(validate(instances[0], result->schedule, 1).ok);
  EXPECT_GE(result->price(), 1.0);
}

TEST(TrySchedule, RejectsZeroMachinesWithReport) {
  JobSet jobs;
  jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  const auto result = try_schedule_bounded(jobs, {.machine_count = 0});
  ASSERT_FALSE(result.has_value());
  EXPECT_FALSE(result.error().ok());
}

TEST(TrySchedule, MatchesSharedEngine) {
  const std::vector<JobSet> instances = corpus(1, 55);
  const ScheduleResult via_shim =
      try_schedule_bounded(instances[0], {.k = 1}).value();
  const ScheduleResult via_engine =
      Engine::shared().solve(instances[0], {.k = 1});
  EXPECT_EQ(fingerprint(via_shim), fingerprint(via_engine));
}

// ------------------------------------------- fault containment ------------

/// Disarms process-wide fault-injection triggers on scope exit so a failing
/// assertion cannot leak armed triggers into later tests.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

// The acceptance bar of the fault-contained batch path: with 4 injected
// faults in a 64-instance batch, exactly those 4 instances report
// POBP-RUN-001 and the other 60 results are bit-identical to a fault-free
// run — for every worker count.
TEST(EngineFaults, InjectedFaultsAreContainedAndDeterministic) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = corpus(64, 4242);
  const ScheduleOptions schedule{.k = 1};

  Engine clean({.schedule = schedule, .workers = 2});
  const std::vector<SolveOutcome> base = clean.try_solve_batch(instances, {});
  ASSERT_EQ(base.size(), instances.size());
  std::vector<std::string> expected;
  for (const SolveOutcome& outcome : base) {
    ASSERT_TRUE(outcome.has_value());
    expected.push_back(fingerprint(*outcome));
  }

  const std::set<std::size_t> faulty = {3, 17, 31, 55};
  const char* spec = "alloc@3:1,laminarize@17:1,tm_dp@31:1,validate@55:1";
  for (const std::size_t workers : {1u, 2u, 8u}) {
    Engine engine({.schedule = schedule,
                   .workers = workers,
                   .fault_injection = spec});
    const std::vector<SolveOutcome> results =
        engine.try_solve_batch(instances, {});
    ASSERT_EQ(results.size(), instances.size());
    std::size_t reports = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (faulty.count(i) != 0) {
        ASSERT_FALSE(results[i].has_value())
            << "instance " << i << " should fault (" << workers
            << " workers)";
        EXPECT_EQ(results[i].error().count("POBP-RUN-001"), 1u);
        ++reports;
      } else {
        ASSERT_TRUE(results[i].has_value())
            << "instance " << i << " poisoned (" << workers << " workers)";
        EXPECT_EQ(fingerprint(*results[i]), expected[i])
            << "instance " << i << " diverged with " << workers
            << " workers";
      }
    }
    EXPECT_EQ(reports, faulty.size());
    EXPECT_EQ(engine.metrics().pipeline_faults, faulty.size());
    EXPECT_EQ(engine.metrics().instances, instances.size() - faulty.size());
  }
}

// The result-arena contract under faults: a fault thrown mid-solve leaves
// the session's pooled scratch/result buffers in a reusable state — after
// disarming, the very same engine (same sessions, same arenas) must solve
// the whole batch correctly, with every result matching a fault-free run.
// Exercised once per fault site so the unwind point sweeps the pipeline:
// seed, laminarize, TM DP, left-merge rebuild, and validation.
TEST(EngineFaults, ResultArenaSurvivesMidSolveFaults) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = skewed_corpus(8, 618);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  Engine clean({.schedule = schedule, .workers = 1});
  std::vector<std::string> expected;
  for (const ScheduleResult& r : clean.solve_batch(instances, {})) {
    expected.push_back(fingerprint(r));
  }

  const char* sites[] = {"alloc", "laminarize", "tm_dp", "left_merge",
                         "validate"};
  for (const char* site : sites) {
    // Fault instance 2 mid-solve on its first visit to the site.
    Engine engine({.schedule = schedule,
                   .workers = 1,
                   .fault_injection = std::string(site) + "@2:1"});
    const std::vector<SolveOutcome> faulted =
        engine.try_solve_batch(instances, {});
    ASSERT_EQ(faulted.size(), instances.size());
    ASSERT_FALSE(faulted[2].has_value())
        << "site " << site << " never fired on instance 2";
    EXPECT_EQ(faulted[2].error().count("POBP-RUN-001"), 1u);
    for (std::size_t i = 0; i < faulted.size(); ++i) {
      if (i == 2) continue;
      ASSERT_TRUE(faulted[i].has_value())
          << "instance " << i << " poisoned by " << site << " fault";
      EXPECT_EQ(fingerprint(*faulted[i]), expected[i]);
    }

    // Triggers re-fire on every matching call, so disarm before rerunning
    // the SAME engine: the arenas that the fault unwound through must now
    // produce bit-identical, fully validated results.
    fault::disarm();
    const std::vector<SolveOutcome> recovered =
        engine.try_solve_batch(instances, {});
    ASSERT_EQ(recovered.size(), instances.size());
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_TRUE(recovered[i].has_value())
          << "instance " << i << " still failing after disarm (" << site
          << ")";
      EXPECT_EQ(fingerprint(*recovered[i]), expected[i])
          << "instance " << i << " corrupted by the " << site
          << " fault unwind";
      EXPECT_TRUE(validate(instances[i], recovered[i]->schedule, 1).ok);
    }
  }
}

TEST(EngineFaults, RetriesAbsorbTransientInjectedFaults) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = corpus(1, 7);

  // Without retries the injected fault is reported...
  Engine failing({.schedule = {.k = 1}, .fault_injection = "laminarize:1"});
  const SolveOutcome failed = failing.try_solve(instances[0]);
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().count("POBP-RUN-001"), 1u);
  EXPECT_EQ(failing.metrics().pipeline_faults, 1u);

  // ...with one retry the nth-call trigger has already fired, so the second
  // attempt runs clean and the instance succeeds.
  Engine retrying({.schedule = {.k = 1},
                   .max_retries = 1,
                   .fault_injection = "laminarize:1"});
  const SolveOutcome retried = retrying.try_solve(instances[0]);
  ASSERT_TRUE(retried.has_value());
  EXPECT_TRUE(validate(instances[0], retried->schedule, 1).ok);
  EXPECT_EQ(retrying.metrics().retries, 1u);
  EXPECT_EQ(retrying.metrics().pipeline_faults, 0u);
}

TEST(EngineFaults, OpBudgetExhaustionIsReported) {
  const std::vector<JobSet> instances = corpus(1, 11);
  Engine engine({.schedule = {.k = 1}, .budget = {.max_ops = 1}});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-003"), 1u);
  EXPECT_EQ(engine.metrics().budget_exhausted, 1u);
}

TEST(EngineFaults, DeadlineExceededIsReported) {
  const std::vector<JobSet> instances = corpus(1, 12);
  Engine engine(
      {.schedule = {.k = 1}, .budget = {.deadline_s = 1e-12}});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-002"), 1u);
  EXPECT_EQ(engine.metrics().deadline_exceeded, 1u);
}

TEST(EngineFaults, DegradePolicyFallsBackToApproximatePath) {
  const std::vector<JobSet> instances = corpus(1, 13);
  Engine engine({.schedule = {.k = 1},
                 .budget = {.max_ops = 1},
                 .degrade = DegradePolicy::kApproximate});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->degraded);
  EXPECT_TRUE(validate(instances[0], outcome->schedule, 1).ok);
  EXPECT_EQ(engine.metrics().degraded_solves, 1u);
  EXPECT_EQ(engine.metrics().budget_exhausted, 0u);

  // Degraded results surface in the metrics exports.
  EXPECT_NE(engine.metrics().to_json().find("\"degraded\":1"),
            std::string::npos);
}

TEST(EngineFaults, PlainSolveThrowsWhenBudgetFiresWithoutDegrade) {
  const std::vector<JobSet> instances = corpus(1, 14);
  Session session({.schedule = {.k = 1}, .budget = {.max_ops = 1}});
  EXPECT_THROW((void)session.solve(instances[0]), BudgetError);
}

TEST(EngineFaults, TrySolveBatchReportsOptionRejectionPerInstance) {
  const std::vector<JobSet> instances = corpus(2, 15);
  Engine engine({.schedule = {.k = 1, .machine_count = 0}});
  const std::vector<SolveOutcome> results =
      engine.try_solve_batch(instances, {});
  ASSERT_EQ(results.size(), 2u);
  for (const SolveOutcome& outcome : results) {
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().count("POBP-OPT-001"), 1u);
  }
}

// ------------------------------------------------------------ price -------

TEST(ScheduleResult, PriceIsInfiniteOnTotalLoss) {
  ScheduleResult r;
  r.value = 0;
  r.unbounded_value = 7.5;
  EXPECT_TRUE(std::isinf(r.price()));
  EXPECT_GT(r.price(), 0);
}

TEST(ScheduleResult, PriceIsOneWhenNothingSchedulable) {
  ScheduleResult r;  // both values zero
  EXPECT_DOUBLE_EQ(r.price(), 1.0);
}

// ---------------------------------------------------------- Expected ------

TEST(Expected, ValueAndErrorPaths) {
  Expected<int, std::string> good = 42;
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  Expected<int, std::string> bad = Unexpected{std::string("nope")};
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

}  // namespace
}  // namespace pobp
