// Tests for pobp::Engine / pobp::Session (the batch-solve runtime), the
// Expected-based checked entry points, and the engine metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

std::vector<JobSet> corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 10 + 3 * i;
    config.max_length = 1 << 6;
    config.horizon = 1 << 12;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

/// Bit-exact fingerprint of a result: the serialized schedule plus the two
/// values (CSV keeps every segment, machine and order).
std::string fingerprint(const ScheduleResult& r) {
  return io::schedule_to_csv(r.schedule) + "|" + std::to_string(r.value) +
         "|" + std::to_string(r.unbounded_value);
}

// ------------------------------------------------------ determinism -------

// The acceptance bar of the engine: solve_batch must be bit-identical to
// the sequential one-call path for every worker count.
TEST(Engine, BatchMatchesSequentialForEveryWorkerCount) {
  const std::vector<JobSet> instances = corpus(12, 77);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(fingerprint(schedule_bounded(jobs, schedule)));
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Engine engine({.schedule = schedule, .workers = workers});
    const std::vector<ScheduleResult> results = engine.solve_batch(instances);
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << "instance " << i << " diverged with " << workers << " workers";
    }
  }
}

TEST(Engine, ForEachResultVisitsEveryIndexOnce) {
  const std::vector<JobSet> instances = corpus(9, 5);
  Engine engine({.schedule = {.k = 1}, .workers = 4});

  std::set<std::size_t> seen;
  std::size_t calls = 0;
  engine.for_each_result(instances,
                         [&](std::size_t index, const ScheduleResult& r) {
                           ++calls;
                           seen.insert(index);
                           EXPECT_TRUE(
                               validate(instances[index], r.schedule, 1).ok);
                         });
  EXPECT_EQ(calls, instances.size());
  EXPECT_EQ(seen.size(), instances.size());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), instances.size() - 1);
}

TEST(Engine, SingleSolveMatchesBatchOfOne) {
  const std::vector<JobSet> instances = corpus(1, 13);
  Engine engine({.schedule = {.k = 2}});
  const ScheduleResult lone = engine.solve(instances[0]);
  const std::vector<ScheduleResult> batch = engine.solve_batch(instances);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(fingerprint(lone), fingerprint(batch[0]));
}

// --------------------------------------------------------- sessions -------

TEST(Session, ReusedAcrossInstancesAccumulatesMetrics) {
  const std::vector<JobSet> instances = corpus(4, 3);
  Session session({.schedule = {.k = 1}});
  std::size_t jobs_total = 0;
  for (const JobSet& jobs : instances) {
    const ScheduleResult r = session.solve(jobs);
    EXPECT_TRUE(validate(jobs, r.schedule, 1).ok);
    jobs_total += jobs.size();
  }
  const EngineMetrics& m = session.metrics();
  EXPECT_EQ(m.instances, instances.size());
  EXPECT_EQ(m.jobs_seen, jobs_total);
  EXPECT_EQ(m.validation_failures, 0u);
  EXPECT_EQ(m.solve_seconds.count(), instances.size());
  EXPECT_GT(m.value_bounded, 0);
  EXPECT_GE(m.value_unbounded, m.value_bounded);

  session.reset_metrics();
  EXPECT_EQ(session.metrics().instances, 0u);
}

TEST(Session, PerCallOptionsOverrideConstructorOptions) {
  const std::vector<JobSet> instances = corpus(1, 9);
  Session session({.schedule = {.k = 1}});
  const ScheduleResult k1 = session.solve(instances[0]);
  const ScheduleResult k0 = session.solve(instances[0], {.k = 0});
  EXPECT_LE(k0.schedule.max_preemptions(), 0u);
  EXPECT_TRUE(validate(instances[0], k1.schedule, 1).ok);
  EXPECT_TRUE(validate(instances[0], k0.schedule, 0).ok);
}

TEST(Session, EmptyInstanceSolvesToEmptySchedule) {
  Session session;
  const ScheduleResult r = session.solve(JobSet{});
  EXPECT_EQ(r.schedule.job_count(), 0u);
  EXPECT_EQ(r.value, 0);
  EXPECT_DOUBLE_EQ(r.price(), 1.0);
  EXPECT_EQ(session.metrics().instances, 1u);
}

// ---------------------------------------------------------- metrics -------

TEST(EngineMetrics, SnapshotMergesWorkerShards) {
  const std::vector<JobSet> instances = corpus(10, 21);
  Engine engine({.schedule = {.k = 1}, .workers = 3});
  (void)engine.solve_batch(instances);

  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.instances, instances.size());
  EXPECT_EQ(m.validation_failures, 0u);
  EXPECT_GT(m.batch_seconds, 0.0);
  EXPECT_GT(m.instances_per_second(), 0.0);
  // Every instance went through seed + validate; strict/lax branch stages
  // are recorded per instance too (k >= 1 path).
  EXPECT_EQ(m.stage_seconds[static_cast<std::size_t>(Stage::kSeed)].count(),
            instances.size());
  EXPECT_EQ(
      m.stage_seconds[static_cast<std::size_t>(Stage::kValidate)].count(),
      instances.size());
  EXPECT_EQ(m.price_histogram.total(), m.price.count());
  EXPECT_EQ(m.value_histogram.total(), instances.size());

  engine.reset_metrics();
  EXPECT_EQ(engine.metrics().instances, 0u);
}

TEST(EngineMetrics, ExportsAreNonEmptyAndNamed) {
  const std::vector<JobSet> instances = corpus(3, 41);
  Engine engine({.schedule = {.k = 1}, .workers = 2});
  (void)engine.solve_batch(instances);

  const std::string table = engine.metrics().to_table();
  EXPECT_NE(table.find("instances"), std::string::npos);
  EXPECT_NE(table.find("seed"), std::string::npos);

  const std::string json = engine.metrics().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"instances\":3"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Histogram, BucketsAndMerge) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);   // < 1
  h.add(1.0);   // [1, 2)
  h.add(3.0);   // [2, 4)
  h.add(100);   // >= 4
  EXPECT_EQ(h.counts(), (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.bucket_label(0), "< 1.000");
  EXPECT_EQ(h.bucket_label(3), ">= 4.000");

  Histogram other({1.0, 2.0, 4.0});
  other.add(1.5);
  h.merge(other);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[1], 2u);
}

// ------------------------------------------- checked entry points ---------

TEST(TrySchedule, RejectsZeroMachines) {
  JobSet jobs;
  jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  const auto result = try_schedule_bounded(jobs, {.machine_count = 0});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().count("POBP-OPT-001"), 1u);
}

TEST(TrySchedule, RejectsExactSeedAboveJobLimit) {
  Rng rng(7);
  JobGenConfig config;
  config.n = kExactSeedJobLimit + 1;
  const JobSet jobs = random_jobs(config, rng);
  const auto result =
      try_schedule_bounded(jobs, {.seed = ScheduleOptions::Seed::kExact});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().count("POBP-OPT-002"), 1u);
}

TEST(TrySchedule, AcceptsGoodOptionsAndSolves) {
  const std::vector<JobSet> instances = corpus(1, 99);
  const auto result = try_schedule_bounded(instances[0], {.k = 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(validate(instances[0], result->schedule, 1).ok);
  EXPECT_GE(result->price(), 1.0);
}

TEST(ScheduleBoundedShim, ThrowsOnBadOptions) {
  JobSet jobs;
  jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  EXPECT_THROW((void)schedule_bounded(jobs, {.machine_count = 0}),
               std::invalid_argument);
}

TEST(ScheduleBoundedShim, MatchesSharedEngine) {
  const std::vector<JobSet> instances = corpus(1, 55);
  const ScheduleResult via_shim = schedule_bounded(instances[0], {.k = 1});
  const ScheduleResult via_engine =
      Engine::shared().solve(instances[0], {.k = 1});
  EXPECT_EQ(fingerprint(via_shim), fingerprint(via_engine));
}

// ------------------------------------------- fault containment ------------

/// Disarms process-wide fault-injection triggers on scope exit so a failing
/// assertion cannot leak armed triggers into later tests.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

// The acceptance bar of the fault-contained batch path: with 4 injected
// faults in a 64-instance batch, exactly those 4 instances report
// POBP-RUN-001 and the other 60 results are bit-identical to a fault-free
// run — for every worker count.
TEST(EngineFaults, InjectedFaultsAreContainedAndDeterministic) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = corpus(64, 4242);
  const ScheduleOptions schedule{.k = 1};

  Engine clean({.schedule = schedule, .workers = 2});
  const std::vector<SolveOutcome> base = clean.try_solve_batch(instances);
  ASSERT_EQ(base.size(), instances.size());
  std::vector<std::string> expected;
  for (const SolveOutcome& outcome : base) {
    ASSERT_TRUE(outcome.has_value());
    expected.push_back(fingerprint(*outcome));
  }

  const std::set<std::size_t> faulty = {3, 17, 31, 55};
  const char* spec = "alloc@3:1,laminarize@17:1,tm_dp@31:1,validate@55:1";
  for (const std::size_t workers : {1u, 2u, 8u}) {
    Engine engine({.schedule = schedule,
                   .workers = workers,
                   .fault_injection = spec});
    const std::vector<SolveOutcome> results =
        engine.try_solve_batch(instances);
    ASSERT_EQ(results.size(), instances.size());
    std::size_t reports = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (faulty.count(i) != 0) {
        ASSERT_FALSE(results[i].has_value())
            << "instance " << i << " should fault (" << workers
            << " workers)";
        EXPECT_EQ(results[i].error().count("POBP-RUN-001"), 1u);
        ++reports;
      } else {
        ASSERT_TRUE(results[i].has_value())
            << "instance " << i << " poisoned (" << workers << " workers)";
        EXPECT_EQ(fingerprint(*results[i]), expected[i])
            << "instance " << i << " diverged with " << workers
            << " workers";
      }
    }
    EXPECT_EQ(reports, faulty.size());
    EXPECT_EQ(engine.metrics().pipeline_faults, faulty.size());
    EXPECT_EQ(engine.metrics().instances, instances.size() - faulty.size());
  }
}

TEST(EngineFaults, RetriesAbsorbTransientInjectedFaults) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = corpus(1, 7);

  // Without retries the injected fault is reported...
  Engine failing({.schedule = {.k = 1}, .fault_injection = "laminarize:1"});
  const SolveOutcome failed = failing.try_solve(instances[0]);
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().count("POBP-RUN-001"), 1u);
  EXPECT_EQ(failing.metrics().pipeline_faults, 1u);

  // ...with one retry the nth-call trigger has already fired, so the second
  // attempt runs clean and the instance succeeds.
  Engine retrying({.schedule = {.k = 1},
                   .max_retries = 1,
                   .fault_injection = "laminarize:1"});
  const SolveOutcome retried = retrying.try_solve(instances[0]);
  ASSERT_TRUE(retried.has_value());
  EXPECT_TRUE(validate(instances[0], retried->schedule, 1).ok);
  EXPECT_EQ(retrying.metrics().retries, 1u);
  EXPECT_EQ(retrying.metrics().pipeline_faults, 0u);
}

TEST(EngineFaults, OpBudgetExhaustionIsReported) {
  const std::vector<JobSet> instances = corpus(1, 11);
  Engine engine({.schedule = {.k = 1}, .budget = {.max_ops = 1}});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-003"), 1u);
  EXPECT_EQ(engine.metrics().budget_exhausted, 1u);
}

TEST(EngineFaults, DeadlineExceededIsReported) {
  const std::vector<JobSet> instances = corpus(1, 12);
  Engine engine(
      {.schedule = {.k = 1}, .budget = {.deadline_s = 1e-12}});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-002"), 1u);
  EXPECT_EQ(engine.metrics().deadline_exceeded, 1u);
}

TEST(EngineFaults, DegradePolicyFallsBackToApproximatePath) {
  const std::vector<JobSet> instances = corpus(1, 13);
  Engine engine({.schedule = {.k = 1},
                 .budget = {.max_ops = 1},
                 .degrade = DegradePolicy::kApproximate});
  const SolveOutcome outcome = engine.try_solve(instances[0]);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->degraded);
  EXPECT_TRUE(validate(instances[0], outcome->schedule, 1).ok);
  EXPECT_EQ(engine.metrics().degraded_solves, 1u);
  EXPECT_EQ(engine.metrics().budget_exhausted, 0u);

  // Degraded results surface in the metrics exports.
  EXPECT_NE(engine.metrics().to_json().find("\"degraded\":1"),
            std::string::npos);
}

TEST(EngineFaults, PlainSolveThrowsWhenBudgetFiresWithoutDegrade) {
  const std::vector<JobSet> instances = corpus(1, 14);
  Session session({.schedule = {.k = 1}, .budget = {.max_ops = 1}});
  EXPECT_THROW((void)session.solve(instances[0]), BudgetError);
}

TEST(EngineFaults, TrySolveBatchReportsOptionRejectionPerInstance) {
  const std::vector<JobSet> instances = corpus(2, 15);
  Engine engine({.schedule = {.k = 1, .machine_count = 0}});
  const std::vector<SolveOutcome> results =
      engine.try_solve_batch(instances);
  ASSERT_EQ(results.size(), 2u);
  for (const SolveOutcome& outcome : results) {
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().count("POBP-OPT-001"), 1u);
  }
}

// ------------------------------------------------------------ price -------

TEST(ScheduleResult, PriceIsInfiniteOnTotalLoss) {
  ScheduleResult r;
  r.value = 0;
  r.unbounded_value = 7.5;
  EXPECT_TRUE(std::isinf(r.price()));
  EXPECT_GT(r.price(), 0);
}

TEST(ScheduleResult, PriceIsOneWhenNothingSchedulable) {
  ScheduleResult r;  // both values zero
  EXPECT_DOUBLE_EQ(r.price(), 1.0);
}

// ---------------------------------------------------------- Expected ------

TEST(Expected, ValueAndErrorPaths) {
  Expected<int, std::string> good = 42;
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  Expected<int, std::string> bad = Unexpected{std::string("nope")};
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

}  // namespace
}  // namespace pobp
