// Tests for the max-flow substrate and the migrative feasibility oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "pobp/flow/maxflow.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow net(2);
  const auto e = net.add_edge(0, 1, 7);
  EXPECT_EQ(net.solve(0, 1), 7);
  EXPECT_EQ(net.flow_on(e), 7);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow net(3);
  net.add_edge(0, 1, 10);
  net.add_edge(1, 2, 4);
  EXPECT_EQ(net.solve(0, 2), 4);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow net(4);
  net.add_edge(0, 1, 3);
  net.add_edge(1, 3, 3);
  net.add_edge(0, 2, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(net.solve(0, 3), 8);
}

TEST(MaxFlow, ClassicDiamondWithCrossEdge) {
  // The textbook network where augmenting through the cross edge matters.
  MaxFlow net(4);
  net.add_edge(0, 1, 10);
  net.add_edge(0, 2, 10);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 10);
  net.add_edge(2, 3, 10);
  EXPECT_EQ(net.solve(0, 3), 20);
}

TEST(MaxFlow, DisconnectedSinkIsZero) {
  MaxFlow net(3);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.solve(0, 2), 0);
}

TEST(MaxFlow, RandomNetworksMatchBruteForceCuts) {
  // On small random DAG-ish networks, max-flow must equal the minimum cut
  // over all 2^(V-2) partitions (max-flow–min-cut).
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t v = 5;  // source 0, sink 4
    std::vector<std::tuple<std::size_t, std::size_t, std::int64_t>> edges;
    MaxFlow net(v);
    for (std::size_t a = 0; a < v; ++a) {
      for (std::size_t b = 0; b < v; ++b) {
        if (a != b && rng.bernoulli(0.5)) {
          const std::int64_t cap = rng.uniform_int(0, 10);
          net.add_edge(a, b, cap);
          edges.emplace_back(a, b, cap);
        }
      }
    }
    std::int64_t min_cut = INT64_MAX;
    for (std::uint32_t mask = 0; mask < (1u << (v - 2)); ++mask) {
      // side of node i (1..3): bit i-1; source side contains 0, sink 4 not.
      auto side = [&](std::size_t node) {
        if (node == 0) return true;
        if (node == v - 1) return false;
        return ((mask >> (node - 1)) & 1u) != 0;
      };
      std::int64_t cut = 0;
      for (const auto& [a, b, cap] : edges) {
        if (side(a) && !side(b)) cut += cap;
      }
      min_cut = std::min(min_cut, cut);
    }
    EXPECT_EQ(net.solve(0, v - 1), min_cut) << "trial " << trial;
  }
}

TEST(MigrativeFeasible, EmptySetAndSingleJob) {
  JobSet jobs;
  jobs.add({0, 4, 4, 1.0});
  const std::vector<JobId> none;
  EXPECT_TRUE(migrative_feasible(jobs, none, 1));
  EXPECT_TRUE(migrative_feasible(jobs, all_ids(jobs), 1));
}

TEST(MigrativeFeasible, TwoTightJobsNeedTwoMachines) {
  JobSet jobs;
  jobs.add({0, 4, 4, 1.0});
  jobs.add({0, 4, 4, 1.0});
  EXPECT_FALSE(migrative_feasible(jobs, all_ids(jobs), 1));
  EXPECT_TRUE(migrative_feasible(jobs, all_ids(jobs), 2));
}

TEST(MigrativeFeasible, NoJobOnTwoMachinesAtOnce) {
  // One job of length 8 in a window of 4: even with 10 machines it cannot
  // finish (a job never runs on two machines simultaneously).
  JobSet jobs;
  std::vector<Job> raw{{0, 4, 8, 1.0}};
  // well_formed() forbids this shape, so build the feasibility question
  // with two jobs instead: total demand 8 in a 4-window, one job piece
  // per... use three length-3 jobs in a 4-window on 2 machines: demand 9 >
  // 2·4 is infeasible, but 2 of them fit.
  JobSet tight;
  tight.add({0, 4, 3, 1.0});
  tight.add({0, 4, 3, 1.0});
  tight.add({0, 4, 3, 1.0});
  EXPECT_FALSE(migrative_feasible(tight, all_ids(tight), 2));
  const std::vector<JobId> two{0, 1};
  EXPECT_TRUE(migrative_feasible(tight, two, 2));
  (void)raw;
  (void)jobs;
}

TEST(MigrativeFeasible, MigrationStrictlyHelps) {
  // Three jobs, each length 2 in window [0,3]: demand 6 = 2 machines × 3.
  // Non-migratively, each machine can complete at most one such job plus
  // one more only if windows align — here a migrative schedule exists
  // (McNaughton wrap) but any fixed assignment puts two jobs (4 units) on
  // one machine inside a 3-window: infeasible.
  JobSet jobs;
  jobs.add({0, 3, 2, 1.0});
  jobs.add({0, 3, 2, 1.0});
  jobs.add({0, 3, 2, 1.0});
  EXPECT_TRUE(migrative_feasible(jobs, all_ids(jobs), 2));
  // Sanity: the non-migrative split is indeed impossible — 2 jobs on one
  // machine exceed the interval condition.
  const std::vector<JobId> pair{0, 1};
  EXPECT_FALSE(preemptive_feasible(jobs, pair));
}

// The m = 1 degeneration: flow feasibility ≡ the interval condition.
class FlowVsIntervalCondition
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowVsIntervalCondition, AgreeOnRandomSubsets) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 12;
  config.min_length = 1;
  config.max_length = 64;
  config.max_laxity = 3.0;
  config.horizon = 256;
  const JobSet jobs = random_jobs(config, rng);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<JobId> subset;
    for (JobId id = 0; id < jobs.size(); ++id) {
      if (rng.bernoulli(0.5)) subset.push_back(id);
    }
    EXPECT_EQ(migrative_feasible(jobs, subset, 1),
              preemptive_feasible(jobs, subset))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowVsIntervalCondition,
                         ::testing::Values(7, 8, 9, 10));

TEST(MigrativeFeasible, MonotoneInMachineCount) {
  Rng rng(11);
  JobGenConfig config;
  config.n = 15;
  config.max_length = 32;
  config.max_laxity = 2.0;
  config.horizon = 120;  // congested
  const JobSet jobs = random_jobs(config, rng);
  bool previous = false;
  for (const std::size_t m : {1u, 2u, 3u, 8u}) {
    const bool ok = migrative_feasible(jobs, all_ids(jobs), m);
    EXPECT_TRUE(!previous || ok);  // once feasible, stays feasible
    previous = ok;
  }
  // With machines ≥ n it is always feasible (each job alone is feasible).
  EXPECT_TRUE(migrative_feasible(jobs, all_ids(jobs), jobs.size()));
}

TEST(OptInfinityMigrative, MatchesSingleMachineExact) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    JobGenConfig config;
    config.n = 10;
    config.max_length = 32;
    config.max_laxity = 3.0;
    config.horizon = 200;
    const JobSet jobs = random_jobs(config, rng);
    EXPECT_DOUBLE_EQ(opt_infinity_migrative(jobs, all_ids(jobs), 1).value,
                     opt_infinity(jobs, all_ids(jobs)).value);
  }
}

TEST(OptInfinityMigrative, ValueMonotoneInMachines) {
  Rng rng(17);
  JobGenConfig config;
  config.n = 12;
  config.max_length = 32;
  config.max_laxity = 2.5;
  config.horizon = 150;  // congested
  const JobSet jobs = random_jobs(config, rng);
  Value previous = 0;
  for (const std::size_t m : {1u, 2u, 3u}) {
    const SubsetSolution s = opt_infinity_migrative(jobs, all_ids(jobs), m);
    EXPECT_TRUE(migrative_feasible(jobs, s.members, m));
    EXPECT_GE(s.value, previous);
    previous = s.value;
  }
  EXPECT_DOUBLE_EQ(previous <= jobs.total_value() ? 1.0 : 0.0, 1.0);
}

TEST(OptInfinityMigrative, DominatesNonMigrativeGreedy) {
  // The migrative optimum upper-bounds every non-migrative schedule.
  Rng rng(19);
  JobGenConfig config;
  config.n = 12;
  config.max_length = 32;
  config.max_laxity = 2.5;
  config.horizon = 150;
  const JobSet jobs = random_jobs(config, rng);
  for (const std::size_t m : {2u, 3u}) {
    const Schedule greedy = greedy_infinity_multi(jobs, all_ids(jobs), m);
    const SubsetSolution opt = opt_infinity_migrative(jobs, all_ids(jobs), m);
    EXPECT_GE(opt.value, greedy.total_value(jobs) - 1e-9);
  }
}

}  // namespace
}  // namespace pobp
