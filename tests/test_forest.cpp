// Unit tests for the forest arena.
#include <gtest/gtest.h>

#include "pobp/forest/forest.hpp"

namespace pobp {
namespace {

Forest small_tree() {
  //      0
  //    / | \.
  //   1  2  3
  //  / \     \.
  // 4   5     6
  Forest f;
  f.add(10);        // 0
  f.add(20, 0);     // 1
  f.add(30, 0);     // 2
  f.add(40, 0);     // 3
  f.add(50, 1);     // 4
  f.add(60, 1);     // 5
  f.add(70, 3);     // 6
  return f;
}

TEST(Forest, BasicStructure) {
  const Forest f = small_tree();
  EXPECT_EQ(f.size(), 7u);
  EXPECT_EQ(f.roots().size(), 1u);
  EXPECT_EQ(f.degree(0), 3u);
  EXPECT_EQ(f.degree(1), 2u);
  EXPECT_TRUE(f.is_leaf(4));
  EXPECT_FALSE(f.is_leaf(1));
  EXPECT_TRUE(f.is_root(0));
  EXPECT_EQ(f.parent(6), 3u);
  EXPECT_EQ(f.parent(0), kNoNode);
}

TEST(Forest, MultipleRoots) {
  Forest f;
  f.add(1);
  f.add(2);
  f.add(3, 1);
  EXPECT_EQ(f.roots().size(), 2u);
  EXPECT_EQ(f.roots()[0], 0u);
  EXPECT_EQ(f.roots()[1], 1u);
}

TEST(Forest, AncestorAndDepth) {
  const Forest f = small_tree();
  EXPECT_TRUE(f.is_ancestor(0, 4));
  EXPECT_TRUE(f.is_ancestor(1, 5));
  EXPECT_FALSE(f.is_ancestor(4, 0));
  EXPECT_FALSE(f.is_ancestor(2, 4));
  EXPECT_FALSE(f.is_ancestor(4, 4));  // not a *proper* ancestor of itself
  EXPECT_EQ(f.depth(0), 0u);
  EXPECT_EQ(f.depth(3), 1u);
  EXPECT_EQ(f.depth(6), 2u);
}

TEST(Forest, Values) {
  Forest f = small_tree();
  EXPECT_DOUBLE_EQ(f.total_value(), 280.0);
  EXPECT_DOUBLE_EQ(f.subtree_value(1), 130.0);
  EXPECT_DOUBLE_EQ(f.subtree_value(4), 50.0);
  f.set_value(4, 5);
  EXPECT_DOUBLE_EQ(f.subtree_value(1), 85.0);
}

TEST(Forest, SubtreeMembership) {
  const Forest f = small_tree();
  const auto sub = f.subtree(1);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], 1u);  // root of the subtree first
}

TEST(Forest, PostOrderIsChildrenFirst) {
  const Forest f = small_tree();
  const auto order = f.post_order();
  ASSERT_EQ(order.size(), f.size());
  std::vector<bool> seen(f.size(), false);
  for (const NodeId v : order) {
    for (const NodeId c : f.children(v)) {
      EXPECT_TRUE(seen[c]) << "child " << c << " after parent " << v;
    }
    seen[v] = true;
  }
}

TEST(Forest, LeafCount) {
  const Forest f = small_tree();
  EXPECT_EQ(f.leaf_count(), 4u);  // 4, 5, 2, 6
}

TEST(ForestDeath, ChildBeforeParentAborts) {
  Forest f;
  f.add(1);
  EXPECT_DEATH(f.add(2, 5), "parent");
}

}  // namespace
}  // namespace pobp
