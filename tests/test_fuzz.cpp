// Cross-module differential sweeps ("fuzz" tier): every invariant that ties
// two independent implementations together, hammered with random inputs.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>

#include "pobp/pobp.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/io/fuzz.hpp"
#include "pobp/io/manifest.hpp"
#include "pobp/io/wire.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/io/forest_csv.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

// Ordering of the exact solvers on one instance:
//   ALG_k ≤ OPT_k(slots) ≤ OPT∞(B&B) ≤ migrative OPT∞ ≤ total value,
//   and OPT₀(bitmask) ≤ OPT_k for every k ≥ 0.
class SolverChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverChain, ExactSolversAreConsistentlyOrdered) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    JobGenConfig config;
    config.n = 5;
    config.min_length = 1;
    config.max_length = 5;
    config.max_laxity = 3.0;
    config.horizon = 32;
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
    const JobSet jobs = random_jobs(config, rng);
    const auto ids = all_ids(jobs);

    const Value opt0 = opt_zero(jobs, ids).value;
    const auto opt1 = opt_k_slots(jobs, 1, std::size_t{1} << 34);
    const auto opt2 = opt_k_slots(jobs, 2, std::size_t{1} << 34);
    const Value opt_inf = opt_infinity(jobs, ids).value;
    const Value opt_mig2 = opt_infinity_migrative(jobs, ids, 2).value;
    ASSERT_TRUE(opt1 && opt2);

    EXPECT_LE(opt0, *opt1 + 1e-9);
    EXPECT_LE(*opt1, *opt2 + 1e-9);
    EXPECT_LE(*opt2, opt_inf + 1e-9);
    EXPECT_LE(opt_inf, opt_mig2 + 1e-9);
    EXPECT_LE(opt_mig2, jobs.total_value() + 1e-9);

    // The pipeline never beats the matching exact optimum.
    for (const std::size_t k : {0u, 1u, 2u}) {
      const ScheduleResult r = try_schedule_bounded(
          jobs, {.k = k, .seed = ScheduleOptions::Seed::kExact}).value();
      ASSERT_TRUE(validate(jobs, r.schedule, k));
      const Value cap = k == 0 ? opt0 : (k == 1 ? *opt1 : *opt2);
      EXPECT_LE(r.value, cap + 1e-9) << "k=" << k << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverChain,
                         ::testing::Values(301, 302, 303, 304, 305));

// Reduction idempotence: a schedule that is already k-bounded and laminar
// survives the k'-reduction unscathed for every k' ≥ its forest degree.
class ReductionIdempotence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionIdempotence, BoundedSchedulesPassThroughLosslessly) {
  Rng rng(GetParam());
  LaminarGenConfig config;
  config.target_jobs = 80;
  config.max_children = 3;  // forest degree ≤ 3
  const LaminarInstance inst = random_laminar_instance(config, rng);

  // With k ≥ max forest degree the optimal k-BAS is the whole forest.
  const ReductionResult r = reduce_to_k_preemptive(inst.jobs, inst.schedule, 3);
  EXPECT_DOUBLE_EQ(r.value, inst.jobs.total_value());
  EXPECT_EQ(r.bounded.job_count(), inst.jobs.size());
  EXPECT_TRUE(validate_machine(inst.jobs, r.bounded, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionIdempotence,
                         ::testing::Values(311, 312, 313, 314));

// CSV round trips compose with the whole pipeline.
class IoPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoPipeline, SolveOfParsedEqualsSolveOfOriginal) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 40;
  config.max_length = 128;
  config.horizon = 4096;
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet original = random_jobs(config, rng);
  const JobSet parsed = io::jobs_from_csv(io::jobs_to_csv(original));

  const ScheduleResult a = try_schedule_bounded(original, {.k = 1}).value();
  const ScheduleResult b = try_schedule_bounded(parsed, {.k = 1}).value();
  EXPECT_DOUBLE_EQ(a.value, b.value);  // deterministic pipeline

  // And the schedule itself round-trips losslessly.
  const Schedule round =
      io::schedule_from_csv(io::schedule_to_csv(a.schedule));
  EXPECT_TRUE(validate(original, round, 1));
  EXPECT_DOUBLE_EQ(round.total_value(original), a.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoPipeline,
                         ::testing::Values(321, 322, 323));

// Forest CSV round trips preserve TM results exactly.
class ForestIo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestIo, TmValueSurvivesRoundTrip) {
  Rng rng(GetParam());
  ForestGenConfig config;
  config.nodes = 300;
  config.max_degree = 5;
  config.value_dist = ForestGenConfig::ValueDist::kHeavyTail;
  const Forest original = random_forest(config, rng);
  const Forest parsed = io::forest_from_csv(io::forest_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (const std::size_t k : {1u, 2u}) {
    EXPECT_DOUBLE_EQ(tm_optimal_bas(parsed, k).value,
                     tm_optimal_bas(original, k).value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestIo, ::testing::Values(331, 332));

// Determinism: the full pipeline is a pure function of its inputs.
TEST(Determinism, SchedulingTwiceGivesIdenticalSchedules) {
  Rng rng(341);
  JobGenConfig config;
  config.n = 60;
  config.max_length = 128;
  config.horizon = 4096;
  const JobSet jobs = random_jobs(config, rng);
  const ScheduleResult a = try_schedule_bounded(jobs, {.k = 2, .machine_count = 2}).value();
  const ScheduleResult b = try_schedule_bounded(jobs, {.k = 2, .machine_count = 2}).value();
  EXPECT_EQ(io::schedule_to_csv(a.schedule), io::schedule_to_csv(b.schedule));
}

// Validator agreement: anything EDF emits validates; anything the validator
// rejects, EDF could not have emitted (spot-checked by mutation).
class ValidatorMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidatorMutation, RandomMutationsOfFeasibleSchedulesAreCaught) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 25;
  config.max_length = 64;
  config.max_laxity = 2.0;  // tight windows: most mutations are infeasible
  config.horizon = 2048;
  const JobSet jobs = random_jobs(config, rng);
  const MachineSchedule ms = greedy_infinity(jobs, all_ids(jobs));
  ASSERT_TRUE(validate_machine(jobs, ms));
  if (ms.empty()) GTEST_SKIP();

  int caught = 0;
  int mutations = 0;
  for (int trial = 0; trial < 60; ++trial) {
    // Rebuild the schedule with one random segment shifted.
    MachineSchedule mutated;
    const std::size_t victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ms.job_count()) - 1));
    const Time shift = rng.uniform_int(1, 40) * (rng.bernoulli(0.5) ? 1 : -1);
    bool changed = false;
    for (std::size_t a = 0; a < ms.assignments().size(); ++a) {
      Assignment copy = ms.assignments()[a];
      if (a == victim && !copy.segments.empty()) {
        copy.segments.back().begin += shift;
        copy.segments.back().end += shift;
        changed = true;
      }
      // Normalization inside add() may abort on pathological overlaps;
      // guard with the pre-check used by add().
      mutated.add(std::move(copy));
    }
    if (!changed) continue;
    ++mutations;
    caught += !validate_machine(jobs, mutated).ok;
  }
  // Most random shifts in a tight, busy schedule must be rejected.
  EXPECT_GT(caught * 2, mutations) << caught << "/" << mutations;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorMutation,
                         ::testing::Values(351, 352, 353));

// IO robustness fuzz: the loaders are fed randomly mutated inputs via the
// shared io::fuzz_mutate_line operator set (also used by `pobp chaos`).
// The throwing API may only ever raise io::ParseError; the try_ API never
// throws at all (rule-tagged report instead); neither may abort.  The two
// APIs must also agree on accept/reject.
std::string mutate(std::string text, Rng& rng) {
  return io::fuzz_mutate_line(std::move(text), rng);
}

class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, MutatedJobsCsvNeverAbortsAndApisAgree) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 12;
  config.max_length = 64;
  config.horizon = 1024;
  const std::string good = io::jobs_to_csv(random_jobs(config, rng));

  for (int trial = 0; trial < 300; ++trial) {
    const std::string csv = trial == 0 ? good : mutate(good, rng);

    const auto outcome = io::try_jobs_from_csv(csv);
    if (!outcome.has_value()) {
      EXPECT_FALSE(outcome.error().ok());
      EXPECT_FALSE(outcome.error().rule_ids().empty());
    }

    bool threw = false;
    try {
      const JobSet parsed = io::jobs_from_csv(csv);
      if (outcome.has_value()) {
        EXPECT_EQ(parsed.size(), outcome->size());
      }
    } catch (const io::ParseError&) {
      threw = true;
    }  // any other exception type escapes and fails the test
    EXPECT_EQ(outcome.has_value(), !threw) << "APIs disagree on:\n" << csv;
  }
}

TEST_P(IoFuzz, MutatedJsonlNeverAbortsAndApisAgree) {
  Rng rng(GetParam() + 1000);
  const std::string good =
      "{\"name\": \"a\", \"jobs\": [[0,10,4,5.0],[2,7,3,2.5]]}\n"
      "{\"jobs\": [{\"release\":0,\"deadline\":30,\"length\":10,"
      "\"value\":3}]}\n";

  for (int trial = 0; trial < 300; ++trial) {
    const std::string jsonl = trial == 0 ? good : mutate(good, rng);

    const std::vector<io::InstanceOutcome> outcomes =
        io::try_instances_from_jsonl(jsonl);
    bool all_ok = true;
    for (const io::InstanceOutcome& instance : outcomes) {
      if (instance.jobs.has_value()) continue;
      all_ok = false;
      EXPECT_FALSE(instance.jobs.error().ok());
    }

    bool threw = false;
    try {
      const auto parsed = io::instances_from_jsonl(jsonl);
      EXPECT_EQ(parsed.size(), outcomes.size());
    } catch (const io::ParseError&) {
      threw = true;
    }
    EXPECT_EQ(all_ok, !threw) << "APIs disagree on:\n" << jsonl;
  }
}

TEST_P(IoFuzz, MutatedWireFramesNeverThrowAndRejectWithRules) {
  Rng rng(GetParam() + 3000);
  const std::string good =
      "{\"id\": \"req-1\", \"tenant\": \"acme\", \"k\": 1, \"machines\": 2,"
      " \"deadline_ms\": 50, \"jobs\": [[0,10,4,5.0],[2,7,3,2.5]],"
      " \"schedule\": true}";

  for (int trial = 0; trial < 300; ++trial) {
    const std::string line = trial == 0 ? good : mutate(good, rng);
    // The wire boundary must never throw, whatever the bytes: a rejection
    // is an in-band rule-tagged report that the CLI turns into an error
    // frame.
    const auto outcome = io::try_parse_serve_request(line, 7);
    if (!outcome.has_value()) {
      EXPECT_FALSE(outcome.error().ok());
      EXPECT_FALSE(outcome.error().rule_ids().empty());
    } else if (trial == 0) {
      EXPECT_EQ(outcome->id, "req-1");
      EXPECT_EQ(outcome->jobs.size(), 2u);
    }
  }
}

TEST(WireHardening, OversizedLineIsRejectedBeforeParsing) {
  // A line past the ceiling must come back POBP-IO-001 without being
  // scanned — even when its contents would otherwise parse.
  const std::string big =
      "{\"jobs\": [[0,10,4,5.0]], \"id\": \"" + std::string(256, 'x') + "\"}";
  const auto rejected = io::try_parse_serve_request(big, 1, 64);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().count(diag::rules::kIoParse), 1u);

  // 0 = unlimited, and the default ceiling admits normal requests.
  EXPECT_TRUE(io::try_parse_serve_request(big, 1, 0).has_value());
  EXPECT_TRUE(io::try_parse_serve_request(big, 1).has_value());
}

TEST(WireHardening, DeeplyNestedJsonIsRejectedNotOverflowed) {
  // 4096 nested arrays would previously recurse 4096 frames deep in the
  // JSON reader; the depth guard turns that into an in-band rejection.
  std::string line = "{\"jobs\": ";
  for (int i = 0; i < 4096; ++i) line += '[';
  for (int i = 0; i < 4096; ++i) line += ']';
  line += '}';
  const auto outcome = io::try_parse_serve_request(line, 1, 0);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count(diag::rules::kIoParse), 1u);
}

TEST(WireHardening, TruncatedFramesAreRejectedNotCrashed) {
  const std::string good =
      "{\"id\": \"req-1\", \"jobs\": [[0,10,4,5.0],[2,7,3,2.5]]}";
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const auto outcome =
        io::try_parse_serve_request(good.substr(0, cut), cut + 1);
    ASSERT_FALSE(outcome.has_value()) << "prefix length " << cut;
    EXPECT_FALSE(outcome.error().rule_ids().empty());
  }
}

TEST_P(IoFuzz, MutatedManifestTextNeverThrows) {
  Rng rng(GetParam() + 2000);
  const std::string good = "a.csv\n# comment\nsub/dir/b.csv\n\n/abs/c.csv\n";
  for (int trial = 0; trial < 200; ++trial) {
    // manifest_paths is pure path splitting: no defect may ever throw.
    (void)io::manifest_paths(mutate(good, rng), "base");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, ::testing::Values(361, 362, 363));

}  // namespace
}  // namespace pobp
