// Tests for the random generators.
#include <gtest/gtest.h>

#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(RandomForest, RespectsSizeAndDegree) {
  Rng rng(1);
  ForestGenConfig config;
  config.nodes = 500;
  config.max_degree = 3;
  const Forest f = random_forest(config, rng);
  EXPECT_EQ(f.size(), 500u);
  for (NodeId v = 0; v < f.size(); ++v) {
    EXPECT_LE(f.degree(v), 3u);
    EXPECT_GT(f.value(v), 0.0);
  }
}

TEST(RandomForest, Deterministic) {
  ForestGenConfig config;
  config.nodes = 100;
  Rng a(7), b(7);
  const Forest fa = random_forest(config, a);
  const Forest fb = random_forest(config, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (NodeId v = 0; v < fa.size(); ++v) {
    EXPECT_EQ(fa.parent(v), fb.parent(v));
    EXPECT_EQ(fa.value(v), fb.value(v));
  }
}

TEST(RandomForest, ValueDistributionsProduceValidValues) {
  for (const auto dist : {ForestGenConfig::ValueDist::kUniform,
                          ForestGenConfig::ValueDist::kHeavyTail,
                          ForestGenConfig::ValueDist::kDepthDecay}) {
    Rng rng(5);
    ForestGenConfig config;
    config.nodes = 200;
    config.value_dist = dist;
    const Forest f = random_forest(config, rng);
    for (NodeId v = 0; v < f.size(); ++v) EXPECT_GE(f.value(v), 1.0);
  }
}

TEST(RandomForest, MultipleRootsAppear) {
  Rng rng(3);
  ForestGenConfig config;
  config.nodes = 1000;
  config.root_probability = 0.2;
  const Forest f = random_forest(config, rng);
  EXPECT_GT(f.roots().size(), 10u);
}

TEST(RandomJobs, RespectsRanges) {
  Rng rng(11);
  JobGenConfig config;
  config.n = 300;
  config.min_length = 4;
  config.max_length = 256;
  config.min_laxity = 2.0;
  config.max_laxity = 5.0;
  config.horizon = 10000;
  const JobSet jobs = random_jobs(config, rng);
  ASSERT_EQ(jobs.size(), 300u);
  for (const Job& j : jobs) {
    EXPECT_GE(j.length, 4);
    EXPECT_LE(j.length, 256);
    EXPECT_GE(j.release, 0);
    EXPECT_LE(j.deadline, 10000);
    EXPECT_GE(j.laxity().to_double(), 2.0 - 1e-9);
    // Window is the ceiling of λ·p with λ < 5, so laxity < 5 + 1/p ≤ 6.
    EXPECT_LT(j.laxity().to_double(), 6.0);
    EXPECT_TRUE(j.well_formed());
  }
}

TEST(RandomJobs, ValueModes) {
  for (const auto mode : {JobGenConfig::ValueMode::kUniform,
                          JobGenConfig::ValueMode::kProportional,
                          JobGenConfig::ValueMode::kRandomDensity}) {
    Rng rng(13);
    JobGenConfig config;
    config.n = 50;
    config.value_mode = mode;
    const JobSet jobs = random_jobs(config, rng);
    for (const Job& j : jobs) EXPECT_GT(j.value, 0.0);
  }
}

TEST(Replicate, DuplicatesJobs) {
  JobSet jobs;
  jobs.add({0, 10, 2, 3.0});
  jobs.add({1, 9, 4, 5.0});
  const JobSet tripled = replicate(jobs, 3);
  ASSERT_EQ(tripled.size(), 6u);
  EXPECT_DOUBLE_EQ(tripled.total_value(), 24.0);
  EXPECT_EQ(tripled[4].length, 2);  // copies are laid out set-by-set
  EXPECT_EQ(tripled[5].length, 4);
}

TEST(LaminarGen, ProducesValidLaminarSpanCompactSchedules) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    LaminarGenConfig config;
    config.target_jobs = 80;
    const LaminarInstance inst = random_laminar_instance(config, rng);
    EXPECT_GE(inst.jobs.size(), 1u);
    const auto check = validate_machine(inst.jobs, inst.schedule);
    ASSERT_TRUE(check) << check.error;
    EXPECT_TRUE(is_laminar(inst.schedule));
    // Every job scheduled (OPT∞ = total value by construction).
    EXPECT_EQ(inst.schedule.job_count(), inst.jobs.size());
  }
}

TEST(LaminarGen, ApproximatesTargetSize) {
  Rng rng(19);
  LaminarGenConfig config;
  config.target_jobs = 500;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  EXPECT_GE(inst.jobs.size(), 400u);
  EXPECT_LE(inst.jobs.size(), 650u);
}

TEST(LaminarGen, DepthIsBounded) {
  Rng rng(23);
  LaminarGenConfig config;
  config.target_jobs = 300;
  config.max_depth = 3;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  // Verify nesting depth ≤ 3 via the preemption structure: build intervals.
  // Cheap proxy: max segments per job bounded by max_children+1.
  EXPECT_TRUE(is_laminar(inst.schedule));
}

TEST(LaminarGen, SlackProducesLaxJobs) {
  Rng rng(29);
  LaminarGenConfig config;
  config.target_jobs = 120;
  config.slack_factor = 3.0;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  const auto check = validate_machine(inst.jobs, inst.schedule);
  ASSERT_TRUE(check) << check.error;
  // With slack 3, some jobs should have laxity above 2.
  bool any_lax = false;
  for (const Job& j : inst.jobs) {
    if (j.laxity() >= Rational(2)) any_lax = true;
  }
  EXPECT_TRUE(any_lax);
}

TEST(LaminarGen, Deterministic) {
  LaminarGenConfig config;
  config.target_jobs = 60;
  Rng a(31), b(31);
  const LaminarInstance ia = random_laminar_instance(config, a);
  const LaminarInstance ib = random_laminar_instance(config, b);
  ASSERT_EQ(ia.jobs.size(), ib.jobs.size());
  for (JobId i = 0; i < ia.jobs.size(); ++i) {
    EXPECT_EQ(ia.jobs[i].release, ib.jobs[i].release);
    EXPECT_EQ(ia.jobs[i].length, ib.jobs[i].length);
  }
}

}  // namespace
}  // namespace pobp
