// Cross-module integration sweeps: the full pipeline against exact ground
// truth, on every workload family, for several k and machine counts.
#include <gtest/gtest.h>

#include <tuple>

#include "pobp/pobp.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

// End-to-end: random congested instances, exact OPT∞ seed, bounded result
// within the Theorem 4.2/4.5 envelope of the *exact* optimum.
class ExactPipeline
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(ExactPipeline, BoundedValueWithinTheoremEnvelopeOfExactOpt) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    JobGenConfig config;
    config.n = 14;
    config.min_length = 1;
    config.max_length = 256;
    config.min_laxity = 1.0;
    config.max_laxity = 2.0 * (static_cast<double>(k) + 1.0);
    config.horizon = 2048;
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
    const JobSet jobs = random_jobs(config, rng);

    const ScheduleResult r = try_schedule_bounded(
        jobs, {.k = k, .seed = ScheduleOptions::Seed::kExact}).value();
    const auto check = validate(jobs, r.schedule, k);
    ASSERT_TRUE(check) << check.error;

    const SubsetSolution opt = opt_infinity(jobs, all_ids(jobs));
    EXPECT_DOUBLE_EQ(r.unbounded_value, opt.value);

    // PoBP envelope: value ≥ OPT∞ / min{log n, 6·log P} (up to the Alg. 3
    // constant 2 absorbed below).
    const double n_bound = log_k1(k, static_cast<double>(jobs.size()));
    const double p_bound =
        6.0 * log_k1(k, jobs.length_ratio_P().to_double());
    const double bound = 2.0 * std::min(n_bound, p_bound);
    EXPECT_GE(r.value * bound, opt.value * (1 - 1e-9))
        << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, ExactPipeline,
    ::testing::Combine(::testing::Values(201u, 202u),
                       ::testing::Values(std::size_t{1}, std::size_t{2})));

// The k-monotonicity sanity: more preemptions never hurt the pipeline on
// the same instance and same seed schedule.
TEST(Integration, ValueIsBroadlyMonotoneInK) {
  Rng rng(211);
  LaminarGenConfig config;
  config.target_jobs = 150;
  config.max_children = 6;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  Value at_k1 = 0;
  Value at_k8 = 0;
  for (const std::size_t k : {1u, 8u}) {
    const CombinedResult r =
        k_preemption_combined(inst.jobs, inst.schedule, {.k = k});
    if (k == 1) at_k1 = r.value;
    if (k == 8) at_k8 = r.value;
  }
  EXPECT_GE(at_k8, at_k1 * (1 - 1e-12));
  // With a generous k, the forest degree rarely exceeds it: near-total value.
  EXPECT_GE(at_k8, 0.9 * inst.jobs.total_value());
}

// Exact price on micro instances: pipeline value ≤ OPT_k (slot DP) ≤ OPT∞.
TEST(Integration, PipelineRespectsExactOptKOnMicroInstances) {
  Rng rng(221);
  for (int trial = 0; trial < 8; ++trial) {
    JobGenConfig config;
    config.n = 4;
    config.min_length = 1;
    config.max_length = 5;
    config.max_laxity = 3.0;
    config.horizon = 30;
    const JobSet jobs = random_jobs(config, rng);
    for (const std::size_t k : {0u, 1u, 2u}) {
      const auto opt_k = opt_k_slots(jobs, k, std::size_t{1} << 34);
      ASSERT_TRUE(opt_k);
      const ScheduleResult r = try_schedule_bounded(
          jobs, {.k = k, .seed = ScheduleOptions::Seed::kExact}).value();
      ASSERT_TRUE(validate(jobs, r.schedule, k));
      EXPECT_LE(r.value, *opt_k + 1e-9) << "k=" << k << " trial=" << trial;
      EXPECT_LE(*opt_k, opt_infinity(jobs, all_ids(jobs)).value + 1e-9);
    }
  }
}

// Appendix-B instances flow through the whole public API.
TEST(Integration, AppendixBThroughPublicApi) {
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 4);
  const ScheduleResult r = try_schedule_bounded(inst.jobs, {.k = 1}).value();
  ASSERT_TRUE(validate(inst.jobs, r.schedule, 1));
  EXPECT_LT(r.value, inst.opt_k_upper);
  EXPECT_GT(r.price(), 2.0);  // (L+1)/2 with L=4
}

// Multi-machine pipeline on replicated lower-bound instances.
TEST(Integration, ReplicatedLowerBoundAcrossMachines) {
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 3);
  const JobSet jobs = replicate(inst.jobs, 3);
  const ScheduleResult r =
      try_schedule_bounded(jobs, {.k = 1, .machine_count = 3}).value();
  ASSERT_TRUE(validate(jobs, r.schedule, 1));
  EXPECT_GT(r.value, 0.0);
  EXPECT_LT(r.value, 3.0 * inst.opt_k_upper);
}

}  // namespace
}  // namespace pobp
