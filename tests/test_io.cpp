// Tests for CSV (de)serialization and the Gantt renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/io/csv.hpp"
#include "pobp/io/forest_csv.hpp"
#include "pobp/schedule/report.hpp"
#include "pobp/schedule/gantt.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

JobSet sample_jobs() {
  JobSet jobs;
  jobs.add({0, 10, 4, 5.0});
  jobs.add({2, 20, 6, 2.5});
  jobs.add({5, 9, 1, 100.0});
  return jobs;
}

TEST(JobsCsv, RoundTripsExactly) {
  const JobSet original = sample_jobs();
  const JobSet parsed = io::jobs_from_csv(io::jobs_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].release, original[i].release);
    EXPECT_EQ(parsed[i].deadline, original[i].deadline);
    EXPECT_EQ(parsed[i].length, original[i].length);
    EXPECT_DOUBLE_EQ(parsed[i].value, original[i].value);
  }
}

TEST(JobsCsv, RoundTripsRandomInstancesExactly) {
  Rng rng(5);
  JobGenConfig config;
  config.n = 200;
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet original = random_jobs(config, rng);
  const JobSet parsed = io::jobs_from_csv(io::jobs_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (JobId i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].value, original[i].value);  // 17 sig digits
    EXPECT_EQ(parsed[i].window(), original[i].window());
  }
}

TEST(JobsCsv, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\nrelease,deadline,length,value\n# inline\n0,10,4,5\n";
  const JobSet jobs = io::jobs_from_csv(text);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].length, 4);
}

TEST(JobsCsv, RejectsMissingHeader) {
  EXPECT_THROW(io::jobs_from_csv("0,10,4,5\n"), io::ParseError);
}

TEST(JobsCsv, RejectsWrongCellCount) {
  EXPECT_THROW(
      io::jobs_from_csv("release,deadline,length,value\n0,10,4\n"),
      io::ParseError);
}

TEST(JobsCsv, RejectsNonNumeric) {
  try {
    io::jobs_from_csv("release,deadline,length,value\n0,ten,4,5\n");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(JobsCsv, RejectsMalformedJob) {
  EXPECT_THROW(
      io::jobs_from_csv("release,deadline,length,value\n0,3,4,5\n"),
      io::ParseError);  // window < length
}

TEST(ScheduleCsv, RoundTripsMultiMachine) {
  Schedule original(2);
  original.machine(0).add({0, {{0, 2}, {5, 7}}});
  original.machine(1).add({1, {{1, 4}}});
  const Schedule parsed =
      io::schedule_from_csv(io::schedule_to_csv(original));
  ASSERT_EQ(parsed.machine_count(), 2u);
  ASSERT_NE(parsed.machine(0).find(0), nullptr);
  EXPECT_EQ(parsed.machine(0).find(0)->segments,
            original.machine(0).find(0)->segments);
  EXPECT_EQ(parsed.machine(1).find(1)->segments[0], (Segment{1, 4}));
}

TEST(ScheduleCsv, ValidatesAfterRoundTrip) {
  Rng rng(7);
  JobGenConfig config;
  config.n = 30;
  config.max_length = 64;
  config.horizon = 4096;
  const JobSet jobs = random_jobs(config, rng);
  const MachineSchedule ms = greedy_infinity(jobs, all_ids(jobs));
  const Schedule round =
      io::schedule_from_csv(io::schedule_to_csv(Schedule(ms)));
  EXPECT_TRUE(validate(jobs, round));
  EXPECT_DOUBLE_EQ(round.total_value(jobs), ms.total_value(jobs));
}

TEST(ScheduleCsv, RejectsEmptySegment) {
  EXPECT_THROW(io::schedule_from_csv("machine,job,begin,end\n0,0,5,5\n"),
               io::ParseError);
}

TEST(CsvFiles, SaveAndLoad) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string jobs_path = (dir / "pobp_test_jobs.csv").string();
  const std::string sched_path = (dir / "pobp_test_sched.csv").string();

  const JobSet jobs = sample_jobs();
  io::save_jobs(jobs_path, jobs);
  EXPECT_EQ(io::load_jobs(jobs_path).size(), jobs.size());

  Schedule schedule(1);
  schedule.machine(0).add({0, {{0, 4}}});
  io::save_schedule(sched_path, schedule);
  EXPECT_EQ(io::load_schedule(sched_path).job_count(), 1u);

  std::filesystem::remove(jobs_path);
  std::filesystem::remove(sched_path);
}

TEST(CsvFiles, LoadMissingFileThrows) {
  EXPECT_THROW(io::load_jobs("/nonexistent/path/jobs.csv"),
               std::runtime_error);
}

TEST(Gantt, RendersKnownLayout) {
  JobSet jobs;
  jobs.add({0, 10, 4, 1.0});
  jobs.add({2, 8, 3, 2.0});
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {5, 7}}});
  ms.add({1, {{2, 5}}});
  const std::string art = render_gantt(jobs, ms, {.max_width = 80});
  // 1 tick per column at this width: AABBBAA then idle-free tail.
  EXPECT_NE(art.find("AABBBAA"), std::string::npos) << art;
  EXPECT_NE(art.find("A = job#0"), std::string::npos);
  EXPECT_NE(art.find("B = job#1"), std::string::npos);
}

TEST(Gantt, ShowsIdleGaps) {
  JobSet jobs;
  jobs.add({0, 4, 2, 1.0});
  jobs.add({6, 10, 2, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 2}}});
  ms.add({1, {{6, 8}}});
  const std::string art = render_gantt(jobs, ms, {.max_width = 80});
  EXPECT_NE(art.find("AA....BB"), std::string::npos) << art;
}

TEST(Gantt, EmptyScheduleDoesNotCrash) {
  const std::string art = render_gantt(JobSet{}, MachineSchedule{});
  EXPECT_NE(art.find("time"), std::string::npos);
}

TEST(Gantt, ScalesDownLongHorizons) {
  JobSet jobs;
  jobs.add({0, 100000, 50000, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 50000}}});
  const std::string art = render_gantt(jobs, ms, {.max_width = 50});
  // Must mention a >1 tick scale and stay within ~50 columns per lane.
  EXPECT_NE(art.find("ticks"), std::string::npos);
  const std::size_t lane = art.find("M0");
  const std::size_t eol = art.find('\n', lane);
  EXPECT_LE(eol - lane, 60u);
}

TEST(Gantt, MultiMachineLanes) {
  JobSet jobs;
  jobs.add({0, 4, 2, 1.0});
  jobs.add({0, 4, 2, 1.0});
  Schedule s(2);
  s.machine(0).add({0, {{0, 2}}});
  s.machine(1).add({1, {{0, 2}}});
  const std::string art = render_gantt(jobs, s);
  EXPECT_NE(art.find("M0"), std::string::npos);
  EXPECT_NE(art.find("M1"), std::string::npos);
}


TEST(ForestCsv, RoundTripsStructureAndValues) {
  Forest f;
  f.add(5);
  f.add(10, 0);
  f.add(20, 0);
  f.add(30, 1);
  f.add(7);  // second root
  const Forest parsed = io::forest_from_csv(io::forest_to_csv(f));
  ASSERT_EQ(parsed.size(), f.size());
  for (NodeId v = 0; v < f.size(); ++v) {
    EXPECT_EQ(parsed.parent(v), f.parent(v));
    EXPECT_DOUBLE_EQ(parsed.value(v), f.value(v));
  }
  EXPECT_EQ(parsed.roots().size(), 2u);
}

TEST(ForestCsv, RejectsForwardParentReference) {
  EXPECT_THROW(io::forest_from_csv("parent,value\n3,1\n"), io::ParseError);
}

TEST(ForestCsv, RejectsNonPositiveValue) {
  EXPECT_THROW(io::forest_from_csv("parent,value\n-1,0\n"), io::ParseError);
}

TEST(ForestCsv, RejectsMissingHeader) {
  EXPECT_THROW(io::forest_from_csv("-1,5\n"), io::ParseError);
}

TEST(Report, SummarizesScheduleCorrectly) {
  JobSet jobs;
  jobs.add({0, 20, 4, 10.0});
  jobs.add({0, 20, 3, 5.0});
  jobs.add({0, 20, 2, 1.0});  // left unscheduled
  Schedule s(2);
  s.machine(0).add({0, {{0, 2}, {5, 7}}});  // 1 preemption
  s.machine(1).add({1, {{1, 4}}});
  const ScheduleReport r = make_report(jobs, s);
  EXPECT_EQ(r.machines, 2u);
  EXPECT_EQ(r.scheduled_jobs, 2u);
  EXPECT_EQ(r.total_jobs, 3u);
  EXPECT_DOUBLE_EQ(r.value, 15.0);
  EXPECT_DOUBLE_EQ(r.total_value, 16.0);
  EXPECT_EQ(r.busy_time, 7);
  EXPECT_EQ(r.makespan_window, 7);  // [0, 7)
  EXPECT_DOUBLE_EQ(r.utilization, 7.0 / 14.0);
  EXPECT_EQ(r.max_preemptions, 1u);
  EXPECT_EQ(r.total_preemptions, 1u);
  ASSERT_EQ(r.segment_histogram.size(), 2u);
  EXPECT_EQ(r.segment_histogram[0], 1u);  // one 1-segment job
  EXPECT_EQ(r.segment_histogram[1], 1u);  // one 2-segment job
  EXPECT_FALSE(r.to_string().empty());
}

TEST(Report, EmptySchedule) {
  const ScheduleReport r = make_report(JobSet{}, Schedule(1));
  EXPECT_EQ(r.scheduled_jobs, 0u);
  EXPECT_DOUBLE_EQ(r.utilization, 0.0);
}

}  // namespace
}  // namespace pobp
