// Unit tests for the job model and instance metrics (§2.1, Def. 4.4, §1.3).
#include <gtest/gtest.h>

#include "pobp/schedule/job.hpp"
#include "pobp/schedule/metrics.hpp"

namespace pobp {
namespace {

TEST(Job, WindowLaxityDensity) {
  const Job j{10, 30, 5, 15.0};
  EXPECT_EQ(j.window(), 20);
  EXPECT_EQ(j.laxity(), Rational(4));
  EXPECT_DOUBLE_EQ(j.density(), 3.0);
}

TEST(Job, LaxityIsExactRational) {
  const Job j{0, 7, 3, 1.0};
  EXPECT_EQ(j.laxity(), Rational(7, 3));
}

TEST(Job, WellFormed) {
  EXPECT_TRUE((Job{0, 5, 5, 1.0}).well_formed());   // tight is fine
  EXPECT_FALSE((Job{0, 4, 5, 1.0}).well_formed());  // window < length
  EXPECT_FALSE((Job{0, 5, 0, 1.0}).well_formed());  // zero length
  EXPECT_FALSE((Job{0, 5, 2, 0.0}).well_formed());  // zero value
}

TEST(JobSet, AddAndAccess) {
  JobSet jobs;
  const JobId a = jobs.add({0, 10, 2, 3.0});
  const JobId b = jobs.add({5, 9, 1, 4.0});
  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[a].length, 2);
  EXPECT_EQ(jobs[b].value, 4.0);
}

TEST(JobSet, MalformedJobThrowsInternalError) {
  // Untrusted input can reach add(); it must be containable (thrown, not
  // aborted) so the serving layer can reject the instance and continue.
  JobSet jobs;
  EXPECT_THROW(jobs.add({0, 1, 5, 1.0}), InternalError);
}

TEST(JobSet, Aggregates) {
  JobSet jobs;
  jobs.add({0, 10, 2, 3.0});
  jobs.add({5, 40, 8, 4.0});
  jobs.add({1, 9, 4, 5.0});
  EXPECT_DOUBLE_EQ(jobs.total_value(), 12.0);
  EXPECT_EQ(jobs.total_length(), 14);
  EXPECT_EQ(jobs.min_length(), 2);
  EXPECT_EQ(jobs.max_length(), 8);
  EXPECT_EQ(jobs.length_ratio_P(), Rational(4));
  EXPECT_EQ(jobs.horizon(), 40);
  EXPECT_EQ(jobs.earliest_release(), 0);
  EXPECT_EQ(jobs.max_laxity(), Rational(5));  // job 0: 10/2
}

TEST(JobSet, ValueOfSubset) {
  JobSet jobs;
  jobs.add({0, 10, 2, 3.0});
  jobs.add({0, 10, 2, 4.0});
  jobs.add({0, 10, 2, 5.0});
  const std::vector<JobId> subset{0, 2};
  EXPECT_DOUBLE_EQ(jobs.value_of(subset), 8.0);
}

TEST(JobSet, AllIds) {
  JobSet jobs;
  jobs.add({0, 10, 2, 3.0});
  jobs.add({0, 10, 2, 4.0});
  const auto ids = all_ids(jobs);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
}

TEST(Metrics, LogBase) {
  EXPECT_DOUBLE_EQ(log_base(2.0, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(log_k1(1, 8.0), 3.0);
  EXPECT_DOUBLE_EQ(log_k1(3, 16.0), 2.0);
  // Floored at 1 so it can serve as a bound denominator.
  EXPECT_DOUBLE_EQ(log_k1(7, 2.0), 1.0);
}

TEST(Metrics, ComputeMetrics) {
  JobSet jobs;
  jobs.add({0, 10, 2, 4.0});   // density 2, laxity 5
  jobs.add({0, 16, 8, 4.0});   // density 0.5, laxity 2
  const InstanceMetrics m = compute_metrics(jobs);
  EXPECT_EQ(m.n, 2u);
  EXPECT_DOUBLE_EQ(m.P, 4.0);
  EXPECT_DOUBLE_EQ(m.rho, 1.0);
  EXPECT_DOUBLE_EQ(m.sigma, 4.0);
  EXPECT_DOUBLE_EQ(m.lambda_max, 5.0);
  EXPECT_DOUBLE_EQ(m.total_value, 8.0);
  EXPECT_FALSE(m.to_string().empty());
}

TEST(Metrics, EmptySet) {
  const InstanceMetrics m = compute_metrics(JobSet{});
  EXPECT_EQ(m.n, 0u);
  EXPECT_DOUBLE_EQ(m.total_value, 0.0);
}

}  // namespace
}  // namespace pobp
