// Tests for laminarity detection and the Fig. 1 rearrangement.
#include <gtest/gtest.h>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(IsLaminar, EmptyAndSingleJob) {
  EXPECT_TRUE(is_laminar(MachineSchedule{}));
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {5, 6}}});
  EXPECT_TRUE(is_laminar(ms));
}

TEST(IsLaminar, ProperNestingIsLaminar) {
  // A [0,1) B [1,2) A [2,3): B nested between A's segments.
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {2, 3}}});
  ms.add({1, {{1, 2}}});
  EXPECT_TRUE(is_laminar(ms));
}

TEST(IsLaminar, TwoChildrenInOneGap) {
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {3, 4}}});
  ms.add({1, {{1, 2}}});
  ms.add({2, {{2, 3}}});
  EXPECT_TRUE(is_laminar(ms));
}

TEST(IsLaminar, DeepNesting) {
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {6, 7}}});
  ms.add({1, {{1, 2}, {4, 5}}});
  ms.add({2, {{2, 3}}});
  ms.add({3, {{3, 4}}});
  ms.add({4, {{5, 6}}});
  EXPECT_TRUE(is_laminar(ms));
}

TEST(IsLaminar, DetectsInterleaving) {
  // a1 ≺ b1 ≺ a2 ≺ b2 — the forbidden pattern.
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {2, 3}}});
  ms.add({1, {{1, 2}, {3, 4}}});
  EXPECT_FALSE(is_laminar(ms));
}

TEST(IsLaminar, DetectsInterleavingAcrossNesting) {
  // C nests fine inside A, but B interleaves with A.
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {3, 4}}});          // A
  ms.add({2, {{1, 2}}});                  // C inside A ✓
  ms.add({1, {{2, 3}, {5, 6}}});          // B: starts inside A, ends after
  EXPECT_FALSE(is_laminar(ms));
}

TEST(IsLaminar, SequentialJobsAreLaminar) {
  MachineSchedule ms;
  ms.add({0, {{0, 3}}});
  ms.add({1, {{3, 5}}});
  ms.add({2, {{7, 9}}});
  EXPECT_TRUE(is_laminar(ms));
}

TEST(Laminarize, FixesTheFigureOneExample) {
  // The Fig. 1 pattern: two interleaved jobs.
  JobSet jobs;
  jobs.add({0, 5, 2, 1.0});
  jobs.add({1, 8, 6, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {4, 5}}});
  ms.add({1, {{1, 4}, {5, 8}}});
  ASSERT_TRUE(validate_machine(jobs, ms));
  ASSERT_FALSE(is_laminar(ms));

  const MachineSchedule fixed = laminarize(jobs, ms);
  EXPECT_TRUE(is_laminar(fixed));
  const auto check = validate_machine(jobs, fixed);
  EXPECT_TRUE(check) << check.error;
  // Same job set, same value — no loss (§4.1).
  EXPECT_EQ(fixed.job_count(), 2u);
  EXPECT_DOUBLE_EQ(fixed.total_value(jobs), ms.total_value(jobs));
}

class LaminarizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LaminarizeProperty, RandomFeasibleSetsBecomeLaminarLosslessly) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 40;
  config.max_length = 256;
  config.max_laxity = 5.0;
  config.horizon = 1 << 14;
  const JobSet jobs = random_jobs(config, rng);

  // Build a feasible subset greedily, then laminarize its EDF schedule.
  std::vector<JobId> accepted;
  for (JobId id = 0; id < jobs.size(); ++id) {
    accepted.push_back(id);
    if (!edf_schedule(jobs, accepted)) accepted.pop_back();
  }
  const auto ms = edf_schedule(jobs, accepted);
  ASSERT_TRUE(ms);

  const MachineSchedule out = laminarize(jobs, *ms);
  EXPECT_TRUE(is_laminar(out));
  EXPECT_TRUE(validate_machine(jobs, out));
  EXPECT_EQ(out.job_count(), accepted.size());
  EXPECT_DOUBLE_EQ(out.total_value(jobs), ms->total_value(jobs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaminarizeProperty,
                         ::testing::Values(5, 15, 25, 35, 45, 55));

// EDF output itself must always be laminar (the tie-order argument in
// laminar.hpp) — sweep many random instances.
class EdfLaminarity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfLaminarity, EdfSchedulesAreLaminar) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    JobGenConfig config;
    config.n = 25;
    config.max_length = 64;
    config.max_laxity = 8.0;
    config.horizon = 4096;
    const JobSet jobs = random_jobs(config, rng);
    std::vector<JobId> accepted;
    for (JobId id = 0; id < jobs.size(); ++id) {
      accepted.push_back(id);
      if (!edf_schedule(jobs, accepted)) accepted.pop_back();
    }
    const auto ms = edf_schedule(jobs, accepted);
    ASSERT_TRUE(ms);
    EXPECT_TRUE(is_laminar(*ms)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfLaminarity,
                         ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace pobp
