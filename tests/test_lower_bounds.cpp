// Tests for the three paper constructions (Figs. 2–4, Appendices A–B).
#include <gtest/gtest.h>

#include <cmath>

#include "pobp/bas/tm.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/checked.hpp"

namespace pobp {
namespace {

// ---------------------------------------------------------------- Fig. 2 --

TEST(Fig2, WitnessIsFeasibleWithOnePreemption) {
  for (const std::size_t n : {1u, 2u, 5u, 10u, 20u}) {
    const K0GeometricInstance inst = k0_geometric_instance(n);
    ASSERT_EQ(inst.jobs.size(), n);
    const auto check = validate_machine(inst.jobs, inst.witness, /*k=*/1);
    EXPECT_TRUE(check) << "n=" << n << ": " << check.error;
    EXPECT_EQ(inst.witness.job_count(), n);  // ALL jobs scheduled
  }
}

TEST(Fig2, LengthsAreGeometricWithRatioTwo) {
  const K0GeometricInstance inst = k0_geometric_instance(8);
  for (JobId i = 0; i < 8; ++i) {
    EXPECT_EQ(inst.jobs[i].length, Duration{1} << i);
  }
  EXPECT_DOUBLE_EQ(inst.jobs.length_ratio_P().to_double(), 128.0);
  EXPECT_DOUBLE_EQ(inst.log2_P, 7.0);
}

TEST(Fig2, NonPreemptiveOptimumIsOneJob) {
  // Any non-preemptive placement covers the common mandatory unit, so the
  // exact OPT₀ is a single (unit-value) job — the price is exactly n.
  for (const std::size_t n : {2u, 4u, 8u, 12u}) {
    const K0GeometricInstance inst = k0_geometric_instance(n);
    const SubsetSolution opt0 = opt_zero(inst.jobs, all_ids(inst.jobs));
    EXPECT_DOUBLE_EQ(opt0.value, 1.0) << "n=" << n;
  }
}

TEST(Fig2, AllWindowsShareTheMandatoryUnit) {
  const K0GeometricInstance inst = k0_geometric_instance(10);
  // Mandatory region of job j = [d_j − p_j, r_j + p_j]; all must intersect.
  Time lo = std::numeric_limits<Time>::min();
  Time hi = std::numeric_limits<Time>::max();
  for (const Job& j : inst.jobs) {
    lo = std::max(lo, j.deadline - j.length);
    hi = std::min(hi, j.release + j.length);
  }
  EXPECT_LT(lo, hi);  // a common slot every placement must cover
}

TEST(Fig2, TimesAreNonNegative) {
  const K0GeometricInstance inst = k0_geometric_instance(16);
  for (const Job& j : inst.jobs) EXPECT_GE(j.release, 0);
}

// --------------------------------------------------- Fig. 3 / Appendix A --

TEST(AppendixA, StructureIsCompleteKaryTree) {
  const BasLowerBoundTree lb = bas_lower_bound_tree(1, 3, 4);
  // n = (3^5 − 1)/2 = 121 nodes; every internal node has 3 children.
  EXPECT_EQ(lb.forest.size(), 121u);
  std::size_t leaves = 0;
  for (NodeId v = 0; v < lb.forest.size(); ++v) {
    const std::size_t deg = lb.forest.degree(v);
    EXPECT_TRUE(deg == 0 || deg == 3);
    leaves += deg == 0;
  }
  EXPECT_EQ(leaves, 81u);  // 3^4
}

TEST(AppendixA, ObservationA1LevelValues) {
  // Every level's total value is K^L (the paper's "1", scaled).
  const BasLowerBoundTree lb = bas_lower_bound_tree(2, 4, 3);
  const double level_total = std::pow(4.0, 3.0);
  // Level starts: 1, 4, 16, 64 nodes.
  NodeId id = 0;
  std::size_t width = 1;
  for (std::size_t level = 0; level <= 3; ++level) {
    double sum = 0;
    for (std::size_t i = 0; i < width; ++i) sum += lb.forest.value(id++);
    EXPECT_DOUBLE_EQ(sum, level_total) << "level " << level;
    width *= 4;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(lb.total_value), 4.0 * level_total);
}

TEST(AppendixA, CorollaryA3OptBoundedByGeometricSeries) {
  // ALG = t(root) < K/(K−k) · K^L.
  for (const auto& [k, K, L] :
       std::vector<std::tuple<std::size_t, std::int64_t, std::size_t>>{
           {1, 2, 8}, {2, 4, 6}, {3, 6, 5}}) {
    const BasLowerBoundTree lb = bas_lower_bound_tree(k, K, L);
    const double cap = static_cast<double>(K) /
                       static_cast<double>(K - static_cast<std::int64_t>(k)) *
                       std::pow(static_cast<double>(K),
                                static_cast<double>(L));
    EXPECT_LT(static_cast<double>(lb.opt_bas_value), cap);
  }
}

TEST(AppendixA, Theorem320RatioIsLogarithmic) {
  // With K = 2k: OPT∞/OPT_k > (L+1)/2 = Ω(log_{k+1} n).
  const std::size_t k = 1;
  for (const std::size_t L : {4u, 6u, 8u, 10u}) {
    const BasLowerBoundTree lb = bas_lower_bound_tree(k, 2, L);
    const TmResult tm = tm_optimal_bas(lb.forest, k);
    const double ratio = static_cast<double>(lb.total_value) / tm.value;
    EXPECT_GT(ratio, static_cast<double>(L + 1) / 2.0);
  }
}

TEST(AppendixADeath, RequiresKGreaterThanBound) {
  EXPECT_DEATH(bas_lower_bound_tree(2, 2, 3), "K > k");
}

// --------------------------------------------------- Fig. 4 / Appendix B --

TEST(AppendixB, SizesAndLevels) {
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 3);
  // n = 1 + 2 + 4 + 8 = 15.
  EXPECT_EQ(inst.jobs.size(), 15u);
  // P = (3K²)^L = 12³.
  EXPECT_DOUBLE_EQ(inst.P, 1728.0);
  EXPECT_DOUBLE_EQ(inst.jobs.length_ratio_P().to_double(), 1728.0);
  // λ = 1 + 1/(3K−1) = 6/5 for every job.
  for (const Job& j : inst.jobs) {
    EXPECT_EQ(j.laxity(), Rational(6, 5));
  }
}

TEST(AppendixB, AllJobsFeasibleWithUnboundedPreemption) {
  // Lemma B.2: OPT∞ = L+1 (scaled: everything fits).  EDF is the witness.
  for (const auto& [k, K, L] :
       std::vector<std::tuple<std::size_t, std::int64_t, std::size_t>>{
           {1, 2, 1}, {1, 2, 3}, {1, 2, 5}, {2, 4, 3}, {3, 6, 2}}) {
    const PobpLowerBoundInstance inst = pobp_lower_bound_instance(k, K, L);
    const auto ms = edf_schedule(inst.jobs, all_ids(inst.jobs));
    ASSERT_TRUE(ms.has_value()) << "K=" << K << " L=" << L;
    const auto check = validate_machine(inst.jobs, *ms);
    EXPECT_TRUE(check) << check.error;
    EXPECT_DOUBLE_EQ(ms->total_value(inst.jobs), inst.total_value);
  }
}

TEST(AppendixB, TotalValueMatchesLemmaB2) {
  // OPT∞ = (L+1)·K^L scaled.
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 4);
  EXPECT_DOUBLE_EQ(inst.total_value, 5.0 * 16.0);
  EXPECT_DOUBLE_EQ(inst.opt_k_upper, 2.0 * 16.0);  // K/(K−k)·K^L = 2·16
}

TEST(AppendixB, BoundedAlgorithmsStayBelowLemmaB2Cap) {
  // Any feasible k-bounded schedule is ≤ OPT_k < the Lemma B.2 cap; run
  // our pipeline and check it lands under the cap while OPT∞ takes all.
  for (const std::size_t L : {2u, 3u, 4u}) {
    const std::size_t k = 1;
    const PobpLowerBoundInstance inst =
        pobp_lower_bound_instance(k, 2 * k, L);
    const auto seed = edf_schedule(inst.jobs, all_ids(inst.jobs));
    ASSERT_TRUE(seed);
    const CombinedResult r = k_preemption_combined(inst.jobs, *seed, {.k = k});
    const auto check = validate_machine(inst.jobs, r.schedule, k);
    EXPECT_TRUE(check) << check.error;
    EXPECT_LT(r.value, inst.opt_k_upper) << "L=" << L;
    // Price paid on this instance grows with L.
    EXPECT_GT(inst.total_value / r.value,
              static_cast<double>(L + 1) / 2.0);
  }
}

TEST(AppendixB, LemmaB1OnePreemptionFitsOneChild) {
  // Micro-check of Lemma B.1 on the smallest instance (k=1, K=2, L=1):
  // the exact slot DP with k=1 must stay strictly below OPT∞.
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 1);
  ASSERT_EQ(inst.jobs.size(), 3u);
  const auto opt1 = opt_k_slots(inst.jobs, 1, std::size_t{1} << 36);
  ASSERT_TRUE(opt1.has_value());
  EXPECT_LT(*opt1, inst.total_value);
  EXPECT_LT(*opt1, inst.opt_k_upper);
}

TEST(AppendixB, MaxLPicker) {
  const std::size_t L = pobp_lower_bound_max_L(2, 100000);
  EXPECT_GE(L, 10u);
  // The chosen L must actually instantiate without overflow.
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, L);
  EXPECT_GT(inst.jobs.size(), 0u);
  // And the next L would be too big on at least one axis.
  EXPECT_LT(pobp_lower_bound_max_L(2, 100), 10u);
}

TEST(AppendixB, ReplicatedInstanceForMultiMachine) {
  const PobpLowerBoundInstance inst = pobp_lower_bound_instance(1, 2, 2);
  const JobSet doubled = replicate(inst.jobs, 2);
  EXPECT_EQ(doubled.size(), 2 * inst.jobs.size());
  // Two machines schedule everything (one copy each).
  Schedule s(2);
  const auto m0 = edf_schedule(doubled, all_ids(inst.jobs));
  ASSERT_TRUE(m0);
  std::vector<JobId> second_half;
  for (JobId id = static_cast<JobId>(inst.jobs.size());
       id < doubled.size(); ++id) {
    second_half.push_back(id);
  }
  const auto m1 = edf_schedule(doubled, second_half);
  ASSERT_TRUE(m1);
  s.machine(0) = *m0;
  s.machine(1) = *m1;
  EXPECT_TRUE(validate(doubled, s));
}

}  // namespace
}  // namespace pobp
