// Tests for LSA / LSA_CS (Algorithm 2, Lemma 4.10–4.12, §5).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/schedule/timeline.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(LengthClass, FactorKPlusOneClasses) {
  EXPECT_EQ(length_class(1, 2), 0u);
  EXPECT_EQ(length_class(2, 2), 1u);
  EXPECT_EQ(length_class(3, 2), 1u);
  EXPECT_EQ(length_class(4, 2), 2u);
  EXPECT_EQ(length_class(9, 3), 2u);
  EXPECT_EQ(length_class(8, 3), 1u);
}

TEST(Lsa, SchedulesEverythingWhenRoomIsAmple) {
  JobSet jobs;
  jobs.add({0, 100, 5, 1.0});
  jobs.add({0, 100, 5, 2.0});
  jobs.add({0, 100, 5, 3.0});
  const LsaResult r = lsa(jobs, all_ids(jobs), 1);
  EXPECT_EQ(r.scheduled.size(), 3u);
  EXPECT_TRUE(r.rejected.empty());
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 1));
}

TEST(Lsa, DensityOrderWins) {
  // Two jobs competing for the same tight window: the denser one is placed.
  JobSet jobs;
  jobs.add({0, 4, 4, 4.0});   // density 1
  jobs.add({0, 4, 4, 8.0});   // density 2
  const LsaResult r = lsa(jobs, all_ids(jobs), 1);
  ASSERT_EQ(r.scheduled.size(), 1u);
  EXPECT_EQ(r.scheduled[0], 1u);
  EXPECT_EQ(r.rejected[0], 0u);
}

TEST(Lsa, UsesUpToKPlusOneSegments) {
  // Window [0,12) with two 2-tick obstacles; a 6-tick job needs 3 idle
  // segments — allowed for k = 2, impossible for k = 1 given the obstacles.
  JobSet jobs;
  jobs.add({2, 4, 2, 100.0});   // obstacle 1 (denser: placed first)
  jobs.add({6, 8, 2, 100.0});   // obstacle 2
  jobs.add({0, 10, 6, 6.0});    // the split job
  const LsaResult r2 = lsa(jobs, all_ids(jobs), 2);
  EXPECT_EQ(r2.scheduled.size(), 3u);
  EXPECT_TRUE(validate_machine(jobs, r2.schedule, 2));
  const Assignment* a = r2.schedule.find(2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->segments.size(), 3u);  // [0,2) [4,6) [8,10)

  const LsaResult r1 = lsa(jobs, all_ids(jobs), 1);
  EXPECT_EQ(r1.scheduled.size(), 2u);  // the split job no longer fits
}

TEST(Lsa, LeftmostPlacement) {
  JobSet jobs;
  jobs.add({0, 100, 4, 1.0});
  const LsaResult r = lsa(jobs, all_ids(jobs), 3);
  EXPECT_EQ(r.schedule.find(0)->segments[0], (Segment{0, 4}));
}

TEST(Lsa, KZeroIsEnBloc) {
  JobSet jobs;
  jobs.add({2, 4, 2, 100.0});  // obstacle
  jobs.add({0, 7, 4, 4.0});    // must fit en bloc → only [4,...] has... no
  const LsaResult r = lsa(jobs, all_ids(jobs), 0);
  // Idle segments in [0,7): [0,2) and [4,7); the 4-tick job fits nowhere
  // as one block except... [4,7) is 3 ticks, [0,2) is 2 — rejected.
  EXPECT_EQ(r.scheduled.size(), 1u);
  EXPECT_EQ(r.rejected.size(), 1u);
  EXPECT_EQ(r.rejected[0], 1u);
}

TEST(Lsa, SwapShortestForNextFindsLaterFit) {
  // The leftmost k+1 idle segments do not fit, but swapping the shortest
  // for the next one does (the inner repeat-loop of Alg. 2).
  JobSet jobs;
  jobs.add({1, 3, 2, 100.0});    // obstacle splitting [0,1) | [3,...)
  jobs.add({0, 20, 10, 10.0});   // k=1: {[0,1),[3,20)} → reject [0,1)? sum=18 fits!
  const LsaResult r = lsa(jobs, all_ids(jobs), 1);
  EXPECT_EQ(r.scheduled.size(), 2u);
  const Assignment* a = r.schedule.find(1);
  ASSERT_NE(a, nullptr);
  // Leftmost placement: [0,1) then 9 more ticks from [3,20).
  EXPECT_EQ(a->segments[0], (Segment{0, 1}));
  EXPECT_EQ(a->segments[1], (Segment{3, 12}));
}

TEST(LsaCs, ReturnsBestClassOnly) {
  // Two length classes for k=1 (base 2): lengths 1 vs 8.  Both classes fit
  // alone; the valuable class must win.
  JobSet jobs;
  jobs.add({0, 4, 1, 1.0});
  jobs.add({0, 64, 8, 50.0});
  const LsaResult r = lsa_cs(jobs, all_ids(jobs), 1);
  EXPECT_EQ(r.scheduled.size(), 1u);
  EXPECT_EQ(r.scheduled[0], 1u);
  // The loser class lands in `rejected`.
  ASSERT_EQ(r.rejected.size(), 1u);
  EXPECT_EQ(r.rejected[0], 0u);
}

TEST(LsaCs, EmptyInput) {
  JobSet jobs;
  jobs.add({0, 4, 1, 1.0});
  const std::vector<JobId> none;
  const LsaResult r = lsa_cs(jobs, none, 1);
  EXPECT_TRUE(r.schedule.empty());
}

// Lemma 4.11: every maximal busy run in an LSA schedule is at least as long
// as the shortest job in the class.
class LsaBusyRuns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsaBusyRuns, BusyRunsAtLeastShortestJob) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 60;
  config.min_length = 4;
  config.max_length = 7;  // one length class for k = 1 (base 2: [4,8))
  config.min_laxity = 2.0;
  config.max_laxity = 6.0;
  config.horizon = 300;  // congested
  const JobSet jobs = random_jobs(config, rng);
  const LsaResult r = lsa(jobs, all_ids(jobs), 1);
  ASSERT_FALSE(r.scheduled.empty());

  IdleTimeline timeline;
  for (const auto& a : r.schedule.assignments()) {
    for (const Segment& s : a.segments) timeline.occupy(s);
  }
  const Duration shortest = jobs.min_length();
  for (const Segment& run :
       timeline.busy_in({0, jobs.horizon() + 1})) {
    EXPECT_GE(run.length(), shortest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsaBusyRuns,
                         ::testing::Values(5, 6, 7, 8, 9));

// Feasibility sweep: LSA output always validates with bound k.
class LsaFeasibility
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(LsaFeasibility, OutputAlwaysValidates) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    JobGenConfig config;
    config.n = 80;
    config.min_length = 1;
    config.max_length = 512;
    config.min_laxity = static_cast<double>(k + 1);  // lax population
    config.max_laxity = static_cast<double>(4 * (k + 1));
    config.horizon = 1 << 14;
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
    const JobSet jobs = random_jobs(config, rng);

    const LsaResult plain = lsa(jobs, all_ids(jobs), k);
    const auto c1 = validate_machine(jobs, plain.schedule, k);
    EXPECT_TRUE(c1) << c1.error;
    EXPECT_EQ(plain.scheduled.size() + plain.rejected.size(), jobs.size());

    const LsaResult cs = lsa_cs(jobs, all_ids(jobs), k);
    const auto c2 = validate_machine(jobs, cs.schedule, k);
    EXPECT_TRUE(c2) << c2.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, LsaFeasibility,
    ::testing::Combine(::testing::Values(31u, 32u, 33u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{5})));

// Lemma 4.10: on lax jobs, LSA_CS ≥ OPT∞ / (6·log_{k+1} P) — checked
// against the exact B&B optimum on small congested instances.
class Lemma410
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(Lemma410, LsaCsWithinBoundOfExactOptimum) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    JobGenConfig config;
    config.n = 16;
    config.min_length = 1;
    config.max_length = 64;
    config.min_laxity = static_cast<double>(k + 1);
    config.max_laxity = static_cast<double>(3 * (k + 1));
    config.horizon = 600;  // congested enough that OPT rejects jobs
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
    const JobSet jobs = random_jobs(config, rng);

    const SubsetSolution opt = opt_infinity(jobs, all_ids(jobs));
    const LsaResult r = lsa_cs(jobs, all_ids(jobs), k);
    const Value got = r.schedule.total_value(jobs);

    const double bound = 6.0 * log_k1(k, jobs.length_ratio_P().to_double());
    EXPECT_GE(got * bound, opt.value * (1 - 1e-9))
        << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, Lemma410,
    ::testing::Combine(::testing::Values(11u, 12u, 13u),
                       ::testing::Values(std::size_t{1}, std::size_t{2})));

// The §1.4 variants: value ordering and value/density classification.
TEST(LsaVariants, ValueOrderConsidersValuableJobsFirst) {
  JobSet jobs;
  jobs.add({0, 4, 4, 8.0});    // value 8, density 2
  jobs.add({0, 4, 1, 6.0});    // value 6, density 6
  // Same tight window: density order picks job 1 (and can still fit... it
  // cannot fit both), value order picks job 0.
  const LsaResult by_density = lsa(jobs, all_ids(jobs), 1);
  const LsaResult by_value = lsa(jobs, all_ids(jobs), 1, LsaOrder::kValue);
  ASSERT_EQ(by_density.scheduled.size(), 1u);
  EXPECT_EQ(by_density.scheduled[0], 1u);
  ASSERT_GE(by_value.scheduled.size(), 1u);
  EXPECT_EQ(by_value.scheduled[0], 0u);
}

TEST(LsaVariants, ValueClassesGroupByFactorTwo) {
  // Values 1 and 1000 are in different classes; only one class is returned.
  JobSet jobs;
  jobs.add({0, 8, 4, 1.0});
  jobs.add({0, 8, 4, 1.5});     // same class as job 0 (ratio < 2)
  jobs.add({8, 16, 4, 1000.0});
  const LsaResult r = lsa_cs(jobs, all_ids(jobs), 1, ClassifyBy::kValue);
  EXPECT_TRUE(r.schedule.contains(2));
  // Jobs 0/1 are in the losing class even though they'd fit alongside.
  EXPECT_FALSE(r.schedule.contains(0));
}

TEST(LsaVariants, DensityClassesGroupByFactorTwo) {
  JobSet jobs;
  jobs.add({0, 8, 4, 4.0});      // density 1
  jobs.add({8, 16, 4, 4000.0});  // density 1000
  const LsaResult r = lsa_cs(jobs, all_ids(jobs), 1, ClassifyBy::kDensity);
  EXPECT_EQ(r.schedule.job_count(), 1u);
  EXPECT_TRUE(r.schedule.contains(1));
}

class LsaVariantsFeasibility
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(LsaVariantsFeasibility, AllVariantsValidate) {
  const auto [seed, variant] = GetParam();
  Rng rng(seed);
  JobGenConfig config;
  config.n = 120;
  config.min_length = 1;
  config.max_length = 256;
  config.min_laxity = 2.0;
  config.max_laxity = 8.0;
  config.horizon = 1 << 13;
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);
  for (const std::size_t k : {0u, 1u, 3u}) {
    const ClassifyBy by = variant == 0   ? ClassifyBy::kLength
                          : variant == 1 ? ClassifyBy::kValue
                                         : ClassifyBy::kDensity;
    const LsaOrder order =
        variant == 3 ? LsaOrder::kValue : LsaOrder::kDensity;
    const LsaResult r = lsa_cs(jobs, all_ids(jobs), k, by, order);
    const auto check = validate_machine(jobs, r.schedule, k);
    EXPECT_TRUE(check) << check.error;
    EXPECT_EQ(r.schedule.job_count() + r.rejected.size(), jobs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndVariant, LsaVariantsFeasibility,
    ::testing::Combine(::testing::Values(51u, 52u, 53u),
                       ::testing::Values(0, 1, 2, 3)));

// Multi-machine LSA_CS: feasible, non-migrative, value non-decreasing in m.
TEST(LsaCsMulti, MoreMachinesNeverHurt) {
  Rng rng(77);
  JobGenConfig config;
  config.n = 60;
  config.max_length = 128;
  config.min_laxity = 2.0;
  config.max_laxity = 8.0;
  config.horizon = 2000;  // heavy congestion
  const JobSet jobs = random_jobs(config, rng);

  Value previous = 0;
  for (const std::size_t m : {1u, 2u, 4u, 8u}) {
    const Schedule s = lsa_cs_multi(jobs, all_ids(jobs), 1, m);
    const auto check = validate(jobs, s, 1);
    ASSERT_TRUE(check) << check.error;
    const Value v = s.total_value(jobs);
    EXPECT_GE(v, previous * (1 - 1e-12));
    previous = v;
  }
}

}  // namespace
}  // namespace pobp
