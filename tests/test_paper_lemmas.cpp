// Direct machine checks of the paper's auxiliary lemmas: the Lemma 4.7/4.8
// interval cover, the Lemma 4.12 load factor of rejected windows, and the
// Lemma 4.6 window-growth argument for strict jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "pobp/bas/contraction.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/interval_cover.hpp"
#include "pobp/schedule/timeline.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

// ----------------------------------------------------- Lemmas 4.7 / 4.8 --

/// Coverage count of point t by the given subset of `intervals`.
std::size_t coverage(std::span<const Segment> intervals,
                     std::span<const std::size_t> subset, Time t) {
  std::size_t count = 0;
  for (const std::size_t i : subset) count += intervals[i].contains(t);
  return count;
}

TEST(IntervalCover, SingleInterval) {
  const std::vector<Segment> s{{0, 10}};
  const IntervalCover c = greedy_interval_cover(s);
  ASSERT_EQ(c.chosen.size(), 1u);
  EXPECT_EQ(c.even.size(), 1u);
  EXPECT_TRUE(c.odd.empty());
}

TEST(IntervalCover, ChainPicksOverlappingPairs)  {
  // [0,4) [3,7) [6,10): all needed; parity split {0,2} vs {1}.
  const std::vector<Segment> s{{0, 4}, {3, 7}, {6, 10}};
  const IntervalCover c = greedy_interval_cover(s);
  ASSERT_EQ(c.chosen.size(), 3u);
  EXPECT_EQ(c.even, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(c.odd, (std::vector<std::size_t>{1}));
}

TEST(IntervalCover, RedundantNestedIntervalsDropped) {
  const std::vector<Segment> s{{0, 10}, {2, 5}, {3, 4}, {1, 9}};
  const IntervalCover c = greedy_interval_cover(s);
  ASSERT_EQ(c.chosen.size(), 1u);
  EXPECT_EQ(c.chosen[0], 0u);
}

TEST(IntervalCover, SeparateComponents) {
  const std::vector<Segment> s{{0, 2}, {10, 12}, {11, 14}};
  const IntervalCover c = greedy_interval_cover(s);
  ASSERT_EQ(c.chosen.size(), 3u);
  EXPECT_EQ(union_length(s), 2 + 4);
}

class IntervalCoverProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalCoverProperty, Lemma47CoverageBetweenOneAndTwo) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Segment> intervals;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < n; ++i) {
      const Time a = rng.uniform_int(0, 200);
      intervals.push_back({a, a + rng.uniform_int(1, 40)});
    }
    const IntervalCover cover = greedy_interval_cover(intervals);

    // Check coverage pointwise on all interesting coordinates.
    for (const Segment& s : intervals) {
      for (const Time t : {s.begin, s.end - 1}) {
        const std::size_t all = coverage(intervals, cover.chosen, t);
        EXPECT_GE(all, 1u) << "uncovered point " << t;     // covers ∪S
        EXPECT_LE(all, 2u) << "triple-covered point " << t;  // ≤ 2 deep
        // Corollary 4.8: each parity family covers each point ≤ once.
        EXPECT_LE(coverage(intervals, cover.even, t), 1u);
        EXPECT_LE(coverage(intervals, cover.odd, t), 1u);
      }
    }
    // The two families together have at least half the union's length in
    // whichever is larger (the step used in §4.3.2).
    Duration even_len = 0;
    Duration odd_len = 0;
    for (const std::size_t i : cover.even) even_len += intervals[i].length();
    for (const std::size_t i : cover.odd) odd_len += intervals[i].length();
    EXPECT_GE(std::max(even_len, odd_len) * 2, union_length(intervals));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalCoverProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------ Lemma 4.12 --

class Lemma412 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma412, RejectedWindowsAreLoadedEnough) {
  // Within one length class (P ≤ k+1), every job LSA rejects has its
  // window at least (k+1)/(2P+k+1)-loaded — with class ratio ≤ k+1 that is
  // at least 1/3 (the remark after Lemma 4.12).
  const std::size_t k = 2;
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 80;
  config.min_length = 9;
  config.max_length = 26;  // one base-3 class: [9, 27)
  config.min_laxity = static_cast<double>(k + 1);
  config.max_laxity = static_cast<double>(2 * (k + 1));
  config.horizon = 1600;  // congested enough to reject
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);

  const LsaResult r = lsa(jobs, all_ids(jobs), k);
  if (r.rejected.empty()) GTEST_SKIP() << "instance not congested enough";

  IdleTimeline timeline;
  for (const auto& a : r.schedule.assignments()) {
    for (const Segment& s : a.segments) timeline.occupy(s);
  }
  const double P = jobs.length_ratio_P().to_double();
  const double b0 = static_cast<double>(k + 1) /
                    (2.0 * P + static_cast<double>(k + 1));
  EXPECT_GE(b0, 1.0 / 3.0 - 1e-12);

  for (const JobId id : r.rejected) {
    const Segment window{jobs[id].release, jobs[id].deadline};
    const double load =
        static_cast<double>(timeline.busy_time(window)) /
        static_cast<double>(window.length());
    EXPECT_GE(load, b0 - 1e-12) << "job " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma412,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ------------------------------------------------------------- Lemma 4.6 --

TEST(Lemma46, ContractionLevelWindowsGrowGeometrically) {
  // On a schedule forest of *strict* jobs (λ ≤ k+1, here λ = 1 because the
  // generator uses tight windows), the minimal window of the jobs taken at
  // contraction level i+1 is at least (k+1)× the minimal window at level i
  // — the engine behind the log_{k+1} P bound for strict jobs.
  Rng rng(77);
  LaminarGenConfig config;
  config.target_jobs = 400;
  config.max_children = 6;
  config.slack_factor = 0.0;  // tight windows: every job strict
  const LaminarInstance inst = random_laminar_instance(config, rng);

  const ScheduleForest sf = build_schedule_forest(inst.jobs, inst.schedule);
  for (const std::size_t k : {1u, 2u}) {
    const ContractionResult lc = levelled_contraction(sf.forest, k);
    Duration prev_min = 0;
    for (std::size_t level = 0; level < lc.levels.size(); ++level) {
      Duration min_window = std::numeric_limits<Duration>::max();
      for (const NodeId v : lc.levels[level].roots) {
        min_window =
            std::min(min_window, inst.jobs[sf.node_job[v]].window());
      }
      if (level > 0) {
        EXPECT_GE(min_window, static_cast<Duration>(k + 1) * prev_min)
            << "level " << level << " k=" << k;
      }
      prev_min = min_window;
    }
    // Consequently L ≤ log_{k+1}(P·λ_max) (Lemma 4.6's iteration bound).
    const double bound =
        std::log(inst.jobs.length_ratio_P().to_double() *
                 inst.jobs.max_laxity().to_double()) /
        std::log(static_cast<double>(k + 1));
    EXPECT_LE(static_cast<double>(lc.iterations()), bound + 1.0);
  }
}


// ------------------------------------------------------------- Lemma 4.9 --

// The Azar–Regev prefix lemma (cited from [4]): given any sequence {a_j},
// a non-increasing non-negative sequence {b_j} and X, Y ⊆ [n], if every
// prefix satisfies Σ_{X^i} a ≥ α·Σ_{Y^i} a then Σ_X a·b ≥ α·Σ_Y a·b.
// Abel summation makes this an identity-level fact; we machine-check it on
// random inputs because the LSA_CS analysis leans on it.
class Lemma49 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma49, PrefixDominanceImpliesWeightedDominance) {
  Rng rng(GetParam());
  int verified = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    std::vector<double> a(n), b(n);
    for (auto& x : a) x = rng.uniform_real(0.0, 10.0);
    b[0] = rng.uniform_real(0.0, 10.0);
    for (std::size_t i = 1; i < n; ++i) {
      b[i] = b[i - 1] * rng.uniform01();  // non-increasing, non-negative
    }
    std::vector<bool> in_x(n), in_y(n);
    for (std::size_t i = 0; i < n; ++i) {
      in_x[i] = rng.bernoulli(0.5);
      in_y[i] = rng.bernoulli(0.5);
    }
    const double alpha = rng.uniform_real(0.0, 3.0);

    bool premise = true;
    double px = 0;
    double py = 0;
    for (std::size_t i = 0; i < n && premise; ++i) {
      if (in_x[i]) px += a[i];
      if (in_y[i]) py += a[i];
      premise = px >= alpha * py - 1e-12;
    }
    if (!premise) continue;
    ++verified;
    double wx = 0;
    double wy = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_x[i]) wx += a[i] * b[i];
      if (in_y[i]) wy += a[i] * b[i];
    }
    EXPECT_GE(wx, alpha * wy - 1e-6) << "trial " << trial;
  }
  EXPECT_GT(verified, 100);  // the sweep actually exercised the lemma
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma49, ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace pobp
