// The zero-allocation hot-path contract (docs/PERF.md):
//
//   1. every scratch-reusing entry point is bit-identical to its
//      allocating form, including when one scratch is reused across many
//      instances of different sizes and shapes;
//   2. the engine's pooled sessions keep solve_batch bit-identical to the
//      sequential one-call path for every worker count, with and without
//      budgets and degrade policies installed;
//   3. the CSR Forest survives clear()/rebuild cycles and million-node
//      path trees (iterative traversals — no stack overflow), and once a
//      TmScratch has warmed up, re-running the DP performs zero heap
//      allocations (asserted live when the binary links pobp::allocspy
//      with counting enabled, skipped otherwise).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/core/scratch.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/columns.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

/// Bit-exact fingerprint: CSV serialization keeps every machine, segment
/// and their order, so equal fingerprints ⟺ equal schedules.
std::string fingerprint(const Schedule& schedule, Value value) {
  return io::schedule_to_csv(schedule) + "|" + std::to_string(value);
}

std::string fingerprint(const ScheduleResult& r) {
  return fingerprint(r.schedule, r.value) + "|" +
         std::to_string(r.unbounded_value) + "|" +
         (r.degraded ? "d" : "-");
}

/// Mixed corpus: random windowed jobs (both lax and strict populations)
/// plus jobs lifted from the laminar schedule generator — the two
/// families the paper's experiments draw from (§4.3 / Appendix A).
std::vector<JobSet> mixed_corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 3) {
      case 0: {  // strict-leaning random windows
        JobGenConfig config;
        config.n = 8 + 5 * i;
        config.max_length = 1 << 7;
        config.min_laxity = 1.0;
        config.max_laxity = 1.8;
        config.horizon = 1 << 12;
        instances.push_back(random_jobs(config, rng));
        break;
      }
      case 1: {  // lax-leaning random windows
        JobGenConfig config;
        config.n = 10 + 4 * i;
        config.max_length = 1 << 6;
        config.min_laxity = 3.0;
        config.max_laxity = 9.0;
        config.horizon = 1 << 13;
        instances.push_back(random_jobs(config, rng));
        break;
      }
      default: {  // laminar-generator jobs (deep nesting, tight windows)
        LaminarGenConfig config;
        config.target_jobs = 20 + 10 * i;
        config.slack_factor = 0.2;
        instances.push_back(random_laminar_instance(config, rng).jobs);
        break;
      }
    }
  }
  return instances;
}

// ------------------------------------------------- core equivalence -------

// One SolveScratch reused across a shape-diverse corpus must reproduce the
// scratch-free pipeline bit-for-bit on every instance: stale buffer
// contents from instance i must never leak into instance i+1.
TEST(ScratchEquivalence, CombinedMultiReusedScratchIsBitIdentical) {
  const std::vector<JobSet> instances = mixed_corpus(12, 101);
  SolveScratch scratch;
  for (std::size_t k : {1u, 2u}) {
    for (std::size_t machines : {1u, 2u}) {
      const ScheduleOptions options{.k = k, .machine_count = machines};
      const CombinedOptions combined{.k = k};
      for (const JobSet& jobs : instances) {
        std::vector<JobId> ids(jobs.size());
        std::iota(ids.begin(), ids.end(), JobId{0});

        const Schedule seed_fresh = seed_unbounded_schedule(jobs, options);
        const CombinedMultiResult fresh =
            k_preemption_combined_multi(jobs, seed_fresh, combined);

        scratch.ids.resize(jobs.size());
        std::iota(scratch.ids.begin(), scratch.ids.end(), JobId{0});
        const Schedule seed_pooled =
            seed_unbounded_schedule(jobs, options, scratch.ids, &scratch);
        const CombinedMultiResult pooled = k_preemption_combined_multi(
            jobs, seed_pooled, combined, nullptr, &scratch);

        ASSERT_EQ(fingerprint(seed_pooled, 0), fingerprint(seed_fresh, 0))
            << "seed diverged (k=" << k << ", m=" << machines << ")";
        ASSERT_EQ(fingerprint(pooled.schedule, pooled.value),
                  fingerprint(fresh.schedule, fresh.value))
            << "pipeline diverged (k=" << k << ", m=" << machines << ")";
        EXPECT_EQ(pooled.strict_value, fresh.strict_value);
        EXPECT_EQ(pooled.lax_value, fresh.lax_value);
      }
    }
  }
}

// The k = 0 branch threads LsaScratch through schedule_nonpreemptive.
TEST(ScratchEquivalence, NonPreemptiveReusedScratchIsBitIdentical) {
  const std::vector<JobSet> instances = mixed_corpus(9, 55);
  LsaScratch scratch;
  for (const JobSet& jobs : instances) {
    std::vector<JobId> ids(jobs.size());
    std::iota(ids.begin(), ids.end(), JobId{0});
    const NonPreemptiveResult fresh = schedule_nonpreemptive(jobs, ids);
    const NonPreemptiveResult pooled =
        schedule_nonpreemptive(jobs, ids, nullptr, &scratch);
    EXPECT_EQ(io::schedule_to_csv(Schedule(pooled.schedule)),
              io::schedule_to_csv(Schedule(fresh.schedule)));
    EXPECT_EQ(pooled.value, fresh.value);
  }
}

// TM scratch form vs allocating form on generator forests, reused across
// shrinking and growing sizes.
TEST(ScratchEquivalence, TmScratchReuseMatchesAllocatingForm) {
  Rng rng(7);
  TmScratch scratch;
  TmResult pooled;
  for (std::size_t nodes : {400u, 50u, 2000u, 9u, 1200u}) {
    ForestGenConfig config;
    config.nodes = nodes;
    config.max_degree = 6;
    const Forest f = random_forest(config, rng);
    for (std::size_t k : {1u, 3u}) {
      const TmResult fresh = tm_optimal_bas(f, k);
      tm_optimal_bas(f, k, scratch, pooled);
      EXPECT_EQ(pooled.value, fresh.value) << nodes << "/" << k;
      EXPECT_EQ(pooled.selection.keep, fresh.selection.keep);
      EXPECT_EQ(pooled.t, fresh.t);
      EXPECT_EQ(pooled.m, fresh.m);
    }
  }
}

// ----------------------------------------------- engine determinism -------

// Pooled sessions at every worker count vs the one-call reference, with
// and without a (never-firing) budget + degrade fallback installed: the
// pooled pipeline must not change a single bit of output.
TEST(EngineScratch, WorkersAndBudgetsPreserveBitIdenticalResults) {
  const std::vector<JobSet> instances = mixed_corpus(10, 202);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(fingerprint(try_schedule_bounded(jobs, schedule).value()));
  }

  SolveBudget roomy;
  roomy.deadline_s = 1e9;
  roomy.max_ops = static_cast<std::uint64_t>(-1);

  struct Variant {
    EngineOptions options;
    const char* name;
  };
  const Variant variants[] = {
      {{.schedule = schedule, .workers = 1}, "w1"},
      {{.schedule = schedule, .workers = 2}, "w2"},
      {{.schedule = schedule, .workers = 8}, "w8"},
      {{.schedule = schedule,
        .workers = 2,
        .budget = roomy,
        .degrade = DegradePolicy::kNone},
       "w2+budget"},
      {{.schedule = schedule,
        .workers = 8,
        .budget = roomy,
        .degrade = DegradePolicy::kApproximate},
       "w8+budget+degrade"},
  };
  for (const Variant& variant : variants) {
    Engine engine(variant.options);
    const std::vector<ScheduleResult> results = engine.solve_batch(instances, {});
    ASSERT_EQ(results.size(), instances.size()) << variant.name;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << variant.name << " diverged on instance " << i;
    }
  }
}

// Solving the same batch twice through one engine (sessions warm the
// second time) must be bit-identical to the first pass, for k = 0 too.
TEST(EngineScratch, WarmSessionsMatchColdSessions) {
  const std::vector<JobSet> instances = mixed_corpus(8, 31);
  for (std::size_t k : {0u, 1u}) {
    Engine engine({.schedule = {.k = k}, .workers = 2});
    const std::vector<ScheduleResult> cold = engine.solve_batch(instances, {});
    const std::vector<ScheduleResult> warm = engine.solve_batch(instances, {});
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(fingerprint(warm[i]), fingerprint(cold[i]))
          << "k=" << k << " instance " << i;
    }
  }
}

// ------------------------------------------- SoA/AoS equivalence ----------

// The columnar JobSetView is a byte-faithful mirror of the Job AoS: every
// column holds exactly the field values of the source jobs, in id order.
TEST(SoaEquivalence, ColumnsMirrorTheJobArrayExactly) {
  for (const JobSet& jobs : mixed_corpus(6, 910)) {
    JobColumns columns;
    columns.build(jobs);
    const JobSetView view = columns.view();
    ASSERT_EQ(view.size(), jobs.size());
    for (JobId id = 0; id < jobs.size(); ++id) {
      const Job& job = jobs[id];
      ASSERT_EQ(view.release[id], job.release) << "job " << id;
      ASSERT_EQ(view.deadline[id], job.deadline) << "job " << id;
      ASSERT_EQ(view.length[id], job.length) << "job " << id;
      ASSERT_EQ(view.value[id], job.value) << "job " << id;
    }
  }
}

// The vectorized classify kernel (exponent-bit classes, boundary table,
// counting sort) against the scalar definition: length_class() per job,
// stable-sorted by class.  Randomized over the mixed corpus.
TEST(SoaEquivalence, LsaClassifyMatchesScalarReference) {
  LsaScratch scratch;
  for (const JobSet& jobs : mixed_corpus(10, 412)) {
    std::vector<JobId> ids(jobs.size());
    std::iota(ids.begin(), ids.end(), JobId{0});
    scratch.columns.build(jobs);
    for (std::size_t k : {0u, 1u, 2u, 5u}) {
      const std::size_t base = std::max<std::size_t>(k + 1, 2);
      std::vector<std::pair<std::size_t, JobId>> expected;
      for (const JobId id : ids) {
        expected.emplace_back(length_class(jobs[id].length, base), id);
      }
      std::stable_sort(expected.begin(), expected.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::size_t distinct = 0;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (i == 0 || expected[i].first != expected[i - 1].first) ++distinct;
      }

      const std::size_t got = lsa_classify(scratch.columns.view(), ids, k,
                                           ClassifyBy::kLength, scratch);
      EXPECT_EQ(got, distinct) << "k=" << k;
      ASSERT_EQ(scratch.classes, expected) << "k=" << k;
    }
  }
}

// The columnar solve pipeline at every worker count, and with each of the
// five fault-injection sites fired mid-batch (then disarmed): the SoA
// kernels share scratch buffers with the fault-unwind path, so a single
// stale column after an unwind would show up here as a changed byte.
TEST(SoaEquivalence, WorkersAndFaultSitesStayBitIdentical) {
  const std::vector<JobSet> instances = mixed_corpus(10, 333);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(
        fingerprint(try_schedule_bounded(jobs, schedule).value()));
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    Engine engine({.schedule = schedule, .workers = workers});
    const std::vector<ScheduleResult> results =
        engine.solve_batch(instances, {});
    ASSERT_EQ(results.size(), instances.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(fingerprint(results[i]), expected[i])
          << "workers=" << workers << " instance " << i;
    }
  }

  if (!fault::compiled_in()) return;  // sites below need the fault build
  const char* sites[] = {"alloc", "laminarize", "tm_dp", "left_merge",
                         "validate"};
  for (const char* site : sites) {
    Engine engine({.schedule = schedule,
                   .workers = 2,
                   .fault_injection = std::string(site) + "@4:1"});
    const std::vector<SolveOutcome> faulted =
        engine.try_solve_batch(instances, {});
    fault::disarm();
    ASSERT_EQ(faulted.size(), instances.size());
    ASSERT_FALSE(faulted[4].has_value()) << site << " never fired";
    for (std::size_t i = 0; i < faulted.size(); ++i) {
      if (i == 4) continue;
      ASSERT_TRUE(faulted[i].has_value()) << site << " instance " << i;
      EXPECT_EQ(fingerprint(*faulted[i]), expected[i])
          << site << " instance " << i;
    }
    // Same engine, disarmed: the unwound scratch must rebuild cleanly.
    const std::vector<SolveOutcome> recovered =
        engine.try_solve_batch(instances, {});
    for (std::size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_TRUE(recovered[i].has_value()) << site << " instance " << i;
      EXPECT_EQ(fingerprint(*recovered[i]), expected[i])
          << site << " post-disarm instance " << i;
    }
  }
}

// ------------------------------------------------------- CSR forest -------

TEST(CsrForest, ChildrenSpansMatchInsertionOrder) {
  Forest f;
  const NodeId r = f.add(10);
  const NodeId a = f.add(5, r);
  const NodeId b = f.add(7, r);
  const NodeId c = f.add(2, a);
  const NodeId d = f.add(1, a);
  const NodeId e = f.add(4, b);

  ASSERT_EQ(f.degree(r), 2u);
  EXPECT_EQ(f.children(r)[0], a);
  EXPECT_EQ(f.children(r)[1], b);
  ASSERT_EQ(f.degree(a), 2u);
  EXPECT_EQ(f.children(a)[0], c);
  EXPECT_EQ(f.children(a)[1], d);
  ASSERT_EQ(f.degree(b), 1u);
  EXPECT_EQ(f.children(b)[0], e);
  EXPECT_TRUE(f.is_leaf(c));
  EXPECT_EQ(f.subtree_value(r), 29);
  EXPECT_EQ(f.subtree_value(a), 8);
  EXPECT_EQ(f.subtree_value(b), 11);

  // Mutating after a child query invalidates + lazily rebuilds the CSR.
  const NodeId g = f.add(3, b);
  ASSERT_EQ(f.degree(b), 2u);
  EXPECT_EQ(f.children(b)[1], g);
  EXPECT_EQ(f.subtree_value(r), 32);
}

TEST(CsrForest, ClearKeepsCapacityAndRebuildsCleanly) {
  Forest f;
  f.reserve(1000);
  Rng rng(99);
  ForestGenConfig config;
  config.nodes = 1000;
  Forest big = random_forest(config, rng);
  big.finalize();

  // Rebuild the same forest into f twice; after the first build no further
  // allocations should be needed (checked live when counting is armed).
  for (int round = 0; round < 2; ++round) {
    f.clear();
    alloccount::Scope scope;
    for (NodeId v = 0; v < big.size(); ++v) {
      f.add(big.value(v), big.parent(v));
    }
    f.finalize();
    if (round == 1 && alloccount::arm()) {
      EXPECT_EQ(scope.allocations(), 0u)
          << "clear() must keep CSR buffer capacity";
    }
    ASSERT_EQ(f.size(), big.size());
    for (NodeId v = 0; v < big.size(); ++v) {
      ASSERT_EQ(f.degree(v), big.degree(v)) << "node " << v;
    }
    EXPECT_EQ(f.total_value(), big.total_value());
  }
}

// ------------------------------------------------- deep-chain stress ------

// A path tree of one million nodes: every traversal in Forest and the TM
// DP must be iterative (a recursive formulation overflows the stack around
// depth ~1e5), and a warmed TmScratch must make re-solves allocation-free.
TEST(DeepChainStress, MillionNodePathTreeSolvesWithoutRecursion) {
  constexpr std::size_t kNodes = 1'000'000;
  Forest f;
  f.reserve(kNodes);
  NodeId prev = f.add(1);
  for (std::size_t i = 1; i < kNodes; ++i) {
    prev = f.add(static_cast<Value>(i % 7 + 1), prev);
  }
  f.finalize();

  // Deep accessors stay iterative.
  EXPECT_EQ(f.depth(prev), kNodes - 1);
  EXPECT_EQ(f.subtree_value(f.roots()[0]), f.total_value());

  // A path tree never exceeds degree 1, so every node is retained: the
  // optimal k-BAS value equals the total value for any k >= 1.
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(f, 1, scratch, result);  // warm-up (sizes every buffer)
  EXPECT_EQ(result.value, f.total_value());

  if (!alloccount::arm()) {
    GTEST_SKIP() << "allocation counting disabled in this build";
  }
  alloccount::Scope scope;
  tm_optimal_bas(f, 1, scratch, result);
  EXPECT_EQ(scope.allocations(), 0u)
      << "warmed TM re-solve must be allocation-free";
  EXPECT_EQ(result.value, f.total_value());
}

}  // namespace
}  // namespace pobp
