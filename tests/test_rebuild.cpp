// Tests for the k-BAS → k-bounded-schedule rebuild (Lemma 4.1) and the
// full §4.2 reduction pipeline (Theorem 4.2).
#include <gtest/gtest.h>

#include <tuple>

#include "pobp/bas/tm.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(Rebuild, LeftMergeAroundPrunedChild) {
  // Job 0 preempted twice by children 1 and 2; keep only child 2 (k = 1):
  // job 0's second segment must merge left into child 1's vacated slot.
  JobSet jobs;
  jobs.add({0, 12, 8, 10.0});  // parent
  jobs.add({2, 6, 2, 1.0});    // child A (will be pruned)
  jobs.add({6, 10, 2, 5.0});   // child B (kept)
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {4, 6}, {8, 12}}});
  ms.add({1, {{2, 4}}});
  ms.add({2, {{6, 8}}});
  ASSERT_TRUE(validate_machine(jobs, ms));

  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  SubForest sel{std::vector<char>(3, 1)};
  sel.keep[1] = 0;  // prune child A

  const MachineSchedule out = rebuild_schedule(jobs, sf, sel);
  const auto check = validate_machine(jobs, out, /*k=*/1);
  EXPECT_TRUE(check) << check.error;
  const Assignment* parent = out.find(0);
  ASSERT_NE(parent, nullptr);
  // Left-merged: [0,2)+[2,4 vacated)+[4,6) coalesce into [0,6).
  ASSERT_EQ(parent->segments.size(), 2u);
  EXPECT_EQ(parent->segments[0], (Segment{0, 6}));
  EXPECT_EQ(parent->segments[1], (Segment{8, 10}));  // trailing work shifts left
  EXPECT_EQ(out.find(2)->segments[0], (Segment{6, 8}));  // kept child unmoved
}

TEST(Rebuild, PruneUpKeepsIndependentComponents) {
  // A cheap parent preempted twice by two valuable children: for k = 1 the
  // optimum prunes the parent *up* and keeps both children as independent
  // components (Obs. 3.8b).
  JobSet jobs;
  jobs.add({0, 11, 3, 1.0});    // parent, segments [0,1) [5,6) [10,11)
  jobs.add({1, 5, 4, 10.0});    // child in gap 1 (tight window)
  jobs.add({6, 10, 4, 10.0});   // child in gap 2 (tight window)
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {5, 6}, {10, 11}}});
  ms.add({1, {{1, 5}}});
  ms.add({2, {{6, 10}}});
  ASSERT_TRUE(validate_machine(jobs, ms));
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  ASSERT_EQ(sf.forest.degree(0), 2u);

  const TmResult tm = tm_optimal_bas(sf.forest, 1);
  EXPECT_DOUBLE_EQ(tm.value, 20.0);  // m(root) = 20 beats t(root) = 11
  EXPECT_FALSE(tm.selection.kept(0));
  const MachineSchedule out = rebuild_schedule(jobs, sf, tm.selection);
  EXPECT_TRUE(validate_machine(jobs, out, 1));
  EXPECT_DOUBLE_EQ(out.total_value(jobs), 20.0);
  // Children stay exactly where they were.
  EXPECT_EQ(out.find(1)->segments[0], (Segment{1, 5}));
  EXPECT_EQ(out.find(2)->segments[0], (Segment{6, 10}));
}

TEST(ReduceToKPreemptive, EmptyScheduleIsFine) {
  JobSet jobs;
  jobs.add({0, 4, 2, 1.0});
  const ReductionResult r = reduce_to_k_preemptive(jobs, MachineSchedule{}, 1);
  EXPECT_EQ(r.value, 0.0);
  EXPECT_TRUE(r.bounded.empty());
}

class ReductionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(ReductionProperty, Theorem42HoldsOnRandomLaminarInstances) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    LaminarGenConfig config;
    config.target_jobs = 120;
    config.max_children = 5;
    config.value_dist = trial % 3 == 0
                            ? LaminarGenConfig::ValueDist::kDepthGrow
                            : LaminarGenConfig::ValueDist::kUniform;
    const LaminarInstance inst = random_laminar_instance(config, rng);
    const Value total = inst.jobs.total_value();  // = OPT∞ by construction

    const ReductionResult r =
        reduce_to_k_preemptive(inst.jobs, inst.schedule, k);

    // Feasible and k-bounded (Lemma 4.1).
    const auto check = validate_machine(inst.jobs, r.bounded, k);
    EXPECT_TRUE(check) << check.error;

    // Theorem 4.2: value ≥ OPT∞ / log_{k+1} n.
    const double bound = log_k1(k, static_cast<double>(inst.jobs.size()));
    EXPECT_GE(r.value * bound, total * (1 - 1e-9))
        << "k=" << k << " trial=" << trial << " n=" << inst.jobs.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, ReductionProperty,
    ::testing::Combine(::testing::Values(71u, 72u, 73u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4})));

// The reduction consumes schedules with slack windows too (r < span begin).
TEST(ReductionProperty, SlackWindowsStillRebuildFeasibly) {
  Rng rng(99);
  LaminarGenConfig config;
  config.target_jobs = 100;
  config.slack_factor = 0.5;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  const ReductionResult r = reduce_to_k_preemptive(inst.jobs, inst.schedule, 1);
  const auto check = validate_machine(inst.jobs, r.bounded, 1);
  EXPECT_TRUE(check) << check.error;
  EXPECT_GT(r.value, 0.0);
}

}  // namespace
}  // namespace pobp
