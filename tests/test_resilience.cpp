// Tests for the resilience layer (docs/ROBUSTNESS.md): deterministic
// retry backoff, token-bucket rate limiting (POBP-RUN-006), circuit
// breakers (POBP-RUN-007), the watchdog health states, the latency
// histogram, and the end-to-end behaviour of Session retries and the
// resilient StreamEngine admission path.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/engine/resilience.hpp"
#include "pobp/engine/serve.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

// --- retry backoff ----------------------------------------------------------

TEST(RetryBackoff, DeterministicCappedExponentialWithJitterBounds) {
  RetryPolicy policy;
  policy.base_backoff_s = 0.001;
  policy.max_backoff_s = 0.016;
  policy.jitter_frac = 0.5;

  // Pure function: byte-identical replays.
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 1, 42),
                   retry_backoff_s(policy, 1, 42));
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 3, 7), retry_backoff_s(policy, 3, 7));

  // Every delay lands in [base*2^(r-1)*(1-j), min(base*2^(r-1), max)*(1+j)]
  // and the uncapped schedule grows geometrically in expectation.
  for (std::size_t attempt = 1; attempt <= 10; ++attempt) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      const double d = retry_backoff_s(policy, attempt, seed);
      const double nominal =
          std::min(policy.base_backoff_s * static_cast<double>(1u << (attempt - 1)),
                   policy.max_backoff_s);
      EXPECT_GE(d, nominal * (1 - policy.jitter_frac) - 1e-12);
      EXPECT_LE(d, nominal * (1 + policy.jitter_frac) + 1e-12);
    }
  }

  // Different seeds decorrelate (not all identical).
  EXPECT_NE(retry_backoff_s(policy, 2, 1), retry_backoff_s(policy, 2, 2));

  // Zero jitter reproduces the exact doubling schedule.
  policy.jitter_frac = 0;
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 1, 9), 0.001);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 2, 9), 0.002);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 5, 9), 0.016);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 9, 9), 0.016);  // capped

  // Huge attempt numbers must not overflow the exponent.
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 4000, 9), 0.016);
}

// --- token bucket -----------------------------------------------------------

TEST(TokenBucket, RefillsAtTheConfiguredRateOnAManualClock) {
  TokenBucket bucket;
  RateLimit limit;
  limit.tokens_per_s = 10;  // one token every 100 ms
  limit.burst = 2;
  bucket.configure(limit, 0.0);
  ASSERT_TRUE(bucket.enabled());

  // The bucket starts full: `burst` admissions back-to-back, then dry.
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.05));  // half a token: still dry

  EXPECT_TRUE(bucket.try_acquire(0.1));  // one token refilled
  EXPECT_FALSE(bucket.try_acquire(0.1));

  // A long quiet period refills to burst, never beyond.
  EXPECT_NEAR(bucket.available(100.0), 2.0, 1e-9);
  EXPECT_TRUE(bucket.try_acquire(100.0));
  EXPECT_TRUE(bucket.try_acquire(100.0));
  EXPECT_FALSE(bucket.try_acquire(100.0));

  // An unconfigured or disabled bucket always admits.
  TokenBucket open_bucket;
  EXPECT_FALSE(open_bucket.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(open_bucket.try_acquire(0.0));
}

// --- circuit breaker --------------------------------------------------------

TEST(Breaker, TripsOnConsecutiveFailuresAndRecoversThroughProbes) {
  CircuitBreaker breaker;
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.cooldown_s = 10.0;
  policy.half_open_probes = 2;
  policy.success_to_close = 2;
  breaker.configure(policy);

  // Closed: admits freely; non-consecutive failures never trip.
  EXPECT_TRUE(breaker.try_admit(0.0));
  breaker.on_failure(0.0);
  breaker.on_failure(0.0);
  breaker.on_success();  // breaks the streak
  breaker.on_failure(0.0);
  breaker.on_failure(0.0);
  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);

  breaker.on_failure(1.0);  // third consecutive: trip
  EXPECT_EQ(breaker.state(1.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.try_admit(2.0));  // cooldown not elapsed

  // Cooldown elapsed: half-open, `half_open_probes` admissions only.
  EXPECT_EQ(breaker.state(11.5), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.try_admit(11.5));
  EXPECT_TRUE(breaker.try_admit(11.5));
  EXPECT_FALSE(breaker.try_admit(11.5));  // probe budget spent

  // Both probes succeed: closed again, streak state reset.
  breaker.on_success();
  EXPECT_EQ(breaker.state(11.6), BreakerState::kHalfOpen);
  breaker.on_success();
  EXPECT_EQ(breaker.state(11.6), BreakerState::kClosed);
  EXPECT_TRUE(breaker.try_admit(11.6));
}

TEST(Breaker, ProbeFailureReopensAndAbandonedProbesReturnTheirSlot) {
  CircuitBreaker breaker;
  BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.cooldown_s = 5.0;
  policy.half_open_probes = 1;
  breaker.configure(policy);

  breaker.on_failure(0.0);  // threshold 1: trip immediately
  EXPECT_EQ(breaker.trips(), 1u);

  // A failed half-open probe re-opens (and restarts the cooldown).
  EXPECT_TRUE(breaker.try_admit(6.0));
  breaker.on_failure(6.0);
  EXPECT_EQ(breaker.state(6.1), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  // An admitted-then-shed probe returns its slot instead of leaking it.
  EXPECT_TRUE(breaker.try_admit(12.0));
  EXPECT_FALSE(breaker.try_admit(12.0));  // the only probe is out
  breaker.on_abandoned();
  EXPECT_TRUE(breaker.try_admit(12.0));  // slot returned

  // Disabled breakers always admit and never trip.
  CircuitBreaker off;
  EXPECT_FALSE(off.enabled());
  off.on_failure(0.0);
  off.on_failure(0.0);
  EXPECT_TRUE(off.try_admit(0.0));
  EXPECT_EQ(off.trips(), 0u);
}

// Concurrency soak for the TSan stage: producers hammering admission
// while completions feed outcomes back must stay race-free.
TEST(Breaker, ConcurrentAdmissionAndFeedbackIsRaceFree) {
  CircuitBreaker breaker;
  BreakerPolicy policy;
  policy.failure_threshold = 4;
  policy.cooldown_s = 0.0;  // immediate half-open: maximal state churn
  policy.half_open_probes = 2;
  breaker.configure(policy);
  TokenBucket bucket;
  bucket.configure({.tokens_per_s = 1e6, .burst = 64}, 0.0);
  LatencyHistogram latency;

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 20000; ++i) {
        const double now = static_cast<double>(i) * 1e-6;
        if (breaker.try_admit(now)) {
          if (rng.bernoulli(0.3)) {
            breaker.on_failure(now);
          } else if (rng.bernoulli(0.1)) {
            breaker.on_abandoned();
          } else {
            breaker.on_success();
          }
        }
        (void)bucket.try_acquire(now);
        (void)breaker.state(now);
        latency.record(rng.uniform01() * 0.01);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(latency.snapshot().count, 4u * 20000u);
}

// --- latency histogram ------------------------------------------------------

TEST(Latency, BucketsByPowerOfTwoMicrosecondsWithUpperEdgeQuantiles) {
  LatencyHistogram histogram;
  // 100 samples at ~3 µs (bucket [2,4)), 10 at ~1 ms, 1 at ~100 ms.
  for (int i = 0; i < 100; ++i) histogram.record(3e-6);
  for (int i = 0; i < 10; ++i) histogram.record(1e-3);
  histogram.record(0.1);

  const LatencySnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 111u);
  EXPECT_EQ(snap.buckets[1], 100u);  // [2,4) µs
  // Quantiles report the bucket's upper edge (conservative): p50 in the
  // 3 µs bucket, p95 and p99 in the 1 ms one.
  EXPECT_DOUBLE_EQ(snap.p50_ms, 0.004);
  EXPECT_DOUBLE_EQ(snap.p95_ms, 1.024);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 1.024);

  // Degenerate inputs land in the extreme buckets instead of misbehaving.
  LatencyHistogram edge;
  edge.record(0);
  edge.record(-1);
  edge.record(1e9);
  EXPECT_EQ(edge.snapshot().count, 3u);

  // An empty histogram snapshots to all zeros.
  const LatencySnapshot empty = LatencyHistogram().snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99_ms, 0.0);
}

// --- session retry ----------------------------------------------------------

JobSet demo_jobs(std::uint64_t seed, std::size_t n = 16) {
  Rng rng(seed);
  JobGenConfig config;
  config.n = n;
  config.max_length = 1 << 6;
  config.horizon = 1 << 12;
  return random_jobs(config, rng);
}

/// Disarms process-wide fault-injection triggers on scope exit.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

TEST(SessionRetry, TransientFaultRecoversToTheFaultFreeResult) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const JobSet jobs = demo_jobs(91);

  Session clean{{}};
  const SolveOutcome expected = clean.try_solve(jobs, {}, 0);
  ASSERT_TRUE(expected.has_value());

  EngineOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_s = 1e-5;
  fault::arm(fault::parse_spec("tm_dp@0:1"));
  Session session(options);
  const SolveOutcome recovered = session.try_solve(jobs, {}, 0);
  ASSERT_TRUE(recovered.has_value())
      << diag::to_text(recovered.error());
  EXPECT_EQ(io::schedule_to_csv(recovered->schedule),
            io::schedule_to_csv(expected->schedule));
  EXPECT_DOUBLE_EQ(recovered->value, expected->value);
  EXPECT_FALSE(recovered->degraded);
  EXPECT_EQ(session.metrics().retries, 1u);
  EXPECT_EQ(session.metrics().pipeline_faults, 0u);
}

TEST(SessionRetry, PersistentFaultReportsOrDegradesOnTheFinalAttempt) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const JobSet jobs = demo_jobs(92);
  // Fault counters persist across attempts, so triggers 1..3 guarantee
  // every one of 3 attempts faults at its first tm_dp call.
  const char* spec = "tm_dp@0:1,tm_dp@0:2,tm_dp@0:3";

  {
    EngineOptions options;
    options.retry.max_attempts = 3;
    options.retry.base_backoff_s = 1e-5;
    fault::arm(fault::parse_spec(spec));
    Session session(options);
    const SolveOutcome outcome = session.try_solve(jobs, {}, 0);
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().count("POBP-RUN-001"), 1u);
    EXPECT_EQ(session.metrics().retries, 2u);
    EXPECT_EQ(session.metrics().pipeline_faults, 1u);
  }
  {
    // Same persistent fault, but the policy lets the final attempt
    // downgrade: the degraded path skips tm_dp and answers.
    EngineOptions options;
    options.retry.max_attempts = 3;
    options.retry.base_backoff_s = 1e-5;
    options.retry.degrade_final_attempt = true;
    fault::arm(fault::parse_spec(spec));
    Session session(options);
    const SolveOutcome outcome = session.try_solve(jobs, {}, 0);
    ASSERT_TRUE(outcome.has_value()) << diag::to_text(outcome.error());
    EXPECT_TRUE(outcome->degraded);
  }
}

TEST(SessionRetry, RetriesDrawFromTheRequestBudgetNeverBeyondIt) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const JobSet jobs = demo_jobs(93);

  EngineOptions options;
  options.retry.max_attempts = 8;
  // A backoff schedule that would far outlive the deadline if retries
  // were not clamped to the remaining budget.
  options.retry.base_backoff_s = 5.0;
  options.retry.max_backoff_s = 5.0;
  options.budget.deadline_s = 0.05;
  // Every attempt faults, so the request can only end in a contained
  // fault or a deadline verdict — never a success.
  std::string spec = "tm_dp@0:1";
  for (int t = 2; t <= 8; ++t) spec += ",tm_dp@0:" + std::to_string(t);
  fault::arm(fault::parse_spec(spec));
  Session session(options);
  const auto start = std::chrono::steady_clock::now();
  const SolveOutcome outcome = session.try_solve(jobs, {}, 0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Each inter-attempt backoff is clamped to the remaining deadline, so
  // the whole request resolves in well under one nominal 5 s backoff —
  // as POBP-RUN-002 (deadline) or POBP-RUN-001 (final contained fault),
  // depending on which side of the deadline the last attempt lands.
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-002") +
                outcome.error().count("POBP-RUN-001"),
            1u);
  EXPECT_LT(elapsed, 2.0);
}

TEST(SessionRetry, MaxRetriesBackCompatStillRetries) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const JobSet jobs = demo_jobs(94);
  EngineOptions options;
  options.max_retries = 1;  // pre-RetryPolicy spelling: 2 attempts
  fault::arm(fault::parse_spec("left_merge@0:1"));
  Session session(options);
  const SolveOutcome outcome = session.try_solve(jobs, {}, 0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(session.metrics().retries, 1u);
}

// A checker thread (e.g. the `pobp chaos` differential checks) can
// shield its own fault-instrumented calls without disarming the
// process-wide triggers aimed at the system under test.
TEST(SessionRetry, SuppressScopeShieldsTheCallingThreadOnly) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const JobSet jobs = demo_jobs(90);
  fault::arm(fault::parse_spec("tm_dp:1"));
  Session session{{}};
  {
    const fault::SuppressScope shield;
    EXPECT_TRUE(session.try_solve(jobs, {}, 0).has_value());
  }
  // Out of scope the armed trigger fires again.
  EXPECT_FALSE(session.try_solve(jobs, {}, 0).has_value());
}

// --- streaming admission ----------------------------------------------------

TEST(StreamResilience, RateLimitedTenantGetsRun006AndCountsIt) {
  StreamOptions options;
  options.engine.workers = 1;
  StreamEngine engine(options);

  // The tenant's first submission carries a nearly-zero rate: one burst
  // token, then every later admission is shed until the bucket refills
  // (which at 1e-9/s it effectively never does).
  SubmitOptions first;
  first.tenant = "limited";
  first.rate_limit = RateLimit{.tokens_per_s = 1e-9, .burst = 1};
  std::vector<std::future<SolveOutcome>> futures;
  futures.push_back(engine.submit(demo_jobs(95, 8), first));
  for (int i = 0; i < 3; ++i) {
    SubmitOptions more;
    more.tenant = "limited";
    futures.push_back(engine.submit(demo_jobs(95, 8), more));
  }
  // An unlimited tenant on the same engine is unaffected.
  SubmitOptions other;
  other.tenant = "open";
  futures.push_back(engine.submit(demo_jobs(95, 8), other));
  engine.drain();

  ASSERT_TRUE(futures[0].get().has_value());
  for (int i = 1; i < 4; ++i) {
    const SolveOutcome outcome = futures[i].get();
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().count("POBP-RUN-006"), 1u);
  }
  EXPECT_TRUE(futures[4].get().has_value());

  for (const auto& [tenant, stats] : engine.tenant_stats()) {
    if (tenant == "limited") {
      EXPECT_EQ(stats.submitted, 4u);
      EXPECT_EQ(stats.rejected_rate, 3u);
      EXPECT_EQ(stats.completed, 1u);
      EXPECT_EQ(stats.latency.count, 1u);
    } else {
      EXPECT_EQ(stats.rejected_rate, 0u);
    }
  }
}

TEST(StreamResilience, BreakerTripsShedsAndRecoversPerTenant) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  StreamOptions options;
  options.engine.workers = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_s = 0.0;  // immediately half-open: deterministic
  options.breaker.half_open_probes = 1;
  options.breaker.success_to_close = 1;
  // Requests 0 and 1 fault once each (no retry configured), the rest are
  // clean.
  options.engine.fault_injection = "tm_dp@0:1,tm_dp@1:1";
  StreamEngine engine(options);

  SubmitOptions submit;
  submit.tenant = "flaky";
  const JobSet jobs = demo_jobs(96, 10);

  // Two consecutive contained faults trip the breaker...
  for (int i = 0; i < 2; ++i) {
    auto f = engine.submit(jobs, submit);
    engine.drain();
    const SolveOutcome outcome = f.get();
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().count("POBP-RUN-001"), 1u);
  }
  // ...and with a zero cooldown the next admission is the half-open
  // probe; it succeeds and closes the breaker again.
  auto probe = engine.submit(jobs, submit);
  engine.drain();
  ASSERT_TRUE(probe.get().has_value());
  auto after = engine.submit(jobs, submit);
  engine.drain();
  ASSERT_TRUE(after.get().has_value());

  for (const auto& [tenant, stats] : engine.tenant_stats()) {
    if (tenant != "flaky") continue;
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(stats.breaker_state, BreakerState::kClosed);
  }
}

TEST(StreamResilience, OpenBreakerRejectsWithRun007) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  StreamOptions options;
  options.engine.workers = 1;
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown_s = 3600;  // stays open for the whole test
  options.engine.fault_injection = "tm_dp@0:1";
  StreamEngine engine(options);

  SubmitOptions submit;
  submit.tenant = "downed";
  const JobSet jobs = demo_jobs(97, 10);
  auto first = engine.submit(jobs, submit);
  engine.drain();
  ASSERT_FALSE(first.get().has_value());

  auto rejected = engine.submit(jobs, submit);
  const SolveOutcome outcome = rejected.get();  // resolved at admission
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().count("POBP-RUN-007"), 1u);

  engine.drain();
  for (const auto& [tenant, stats] : engine.tenant_stats()) {
    if (tenant != "downed") continue;
    EXPECT_EQ(stats.rejected_breaker, 1u);
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_EQ(stats.breaker_state, BreakerState::kOpen);
  }
}

TEST(StreamResilience, WatchdogMarksStallsAndDegradesNewAdmissions) {
  StreamOptions options;
  options.engine.workers = 1;
  options.watchdog.poll_interval_s = 0.01;
  options.watchdog.stall_s = 0.05;
  StreamEngine engine(options);
  EXPECT_EQ(engine.health(), HealthState::kHealthy);

  // Pause the pump so admitted work cannot progress: the watchdog must
  // flag the stall.
  engine.pause();
  auto stuck = engine.submit(demo_jobs(98, 12));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.health() != HealthState::kStalled &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.health(), HealthState::kStalled);
  EXPECT_GE(engine.watchdog_stalls(), 1u);

  // Admissions during the stall take the graceful-degradation tier.
  auto during = engine.submit(demo_jobs(99, 12));
  engine.resume();
  engine.drain();
  ASSERT_TRUE(stuck.get().has_value());
  const SolveOutcome degraded = during.get();
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded);

  // Progress resumed and the backlog drained: the health state leaves
  // kStalled (kHealthy once the watchdog polls an idle engine).
  const auto recover =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.health() == HealthState::kStalled &&
         std::chrono::steady_clock::now() < recover) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(engine.health(), HealthState::kStalled);
}

TEST(StreamResilience, StatsJsonCarriesHealthTenantsAndLatency) {
  StreamOptions options;
  options.engine.workers = 1;
  StreamEngine engine(options);
  SubmitOptions submit;
  submit.tenant = "acme";
  auto f = engine.submit(demo_jobs(100, 8), submit);
  engine.drain();
  ASSERT_TRUE(f.get().has_value());

  const std::string json = engine.stats_json();
  EXPECT_NE(json.find("\"health\":\"healthy\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"acme\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"breaker_state\":\"closed\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"count\":1"), std::string::npos) << json;
}

TEST(StreamResilience, StatsJsonEscapesHostileTenantNames) {
  // Tenant ids come off the wire: a fuzzed frame can smuggle quotes,
  // backslashes and control bytes into the name.  stats_json() must
  // escape them or the whole document stops being valid JSON.
  StreamOptions options;
  options.engine.workers = 1;
  StreamEngine engine(options);
  SubmitOptions submit;
  submit.tenant = "ev\"il\\t\nenant";
  auto f = engine.submit(demo_jobs(101, 8), submit);
  engine.drain();
  ASSERT_TRUE(f.get().has_value());

  const std::string json = engine.stats_json();
  EXPECT_NE(json.find("\"ev\\\"il\\\\t\\nenant\""), std::string::npos) << json;
  // The raw quote-backslash sequence must not leak through unescaped.
  EXPECT_EQ(json.find("ev\"il"), std::string::npos) << json;
}

}  // namespace
}  // namespace pobp
