// Tests for the schedule-forest construction (§4.1).
#include <gtest/gtest.h>

#include "pobp/gen/schedule_gen.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(ScheduleForest, SequentialJobsBecomeRoots) {
  JobSet jobs;
  jobs.add({0, 3, 3, 1.0});
  jobs.add({3, 7, 4, 2.0});
  MachineSchedule ms;
  ms.add({0, {{0, 3}}});
  ms.add({1, {{3, 7}}});
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  EXPECT_EQ(sf.size(), 2u);
  EXPECT_EQ(sf.forest.roots().size(), 2u);
}

TEST(ScheduleForest, NestedJobBecomesChild) {
  JobSet jobs;
  jobs.add({0, 10, 4, 1.0});
  jobs.add({2, 8, 6, 2.0});
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {8, 10}}});
  ms.add({1, {{2, 8}}});
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  ASSERT_EQ(sf.size(), 2u);
  // Node 0 = job 0 (first segment first); node 1 = job 1, child of node 0.
  EXPECT_EQ(sf.node_job[0], 0u);
  EXPECT_EQ(sf.node_job[1], 1u);
  EXPECT_EQ(sf.forest.parent(1), 0u);
  EXPECT_DOUBLE_EQ(sf.forest.value(1), 2.0);
  EXPECT_EQ(sf.node_span[1], (Segment{2, 8}));
  EXPECT_EQ(sf.node_span[0], (Segment{0, 10}));
}

TEST(ScheduleForest, TwoChildrenInOneGapAreSiblings) {
  JobSet jobs;
  jobs.add({0, 10, 2, 1.0});
  jobs.add({0, 10, 4, 2.0});
  jobs.add({0, 10, 4, 3.0});
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {9, 10}}});
  ms.add({1, {{1, 5}}});
  ms.add({2, {{5, 9}}});
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  EXPECT_EQ(sf.forest.degree(0), 2u);
  EXPECT_EQ(sf.forest.parent(1), 0u);
  EXPECT_EQ(sf.forest.parent(2), 0u);
}

TEST(ScheduleForest, DeepNestingChain) {
  JobSet jobs;
  jobs.add({0, 10, 2, 1.0});
  jobs.add({1, 9, 2, 1.0});
  jobs.add({2, 8, 2, 1.0});
  jobs.add({3, 7, 4, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {9, 10}}});
  ms.add({1, {{1, 2}, {8, 9}}});
  ms.add({2, {{2, 3}, {7, 8}}});
  ms.add({3, {{3, 7}}});
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  EXPECT_EQ(sf.forest.parent(1), 0u);
  EXPECT_EQ(sf.forest.parent(2), 1u);
  EXPECT_EQ(sf.forest.parent(3), 2u);
  EXPECT_EQ(sf.forest.depth(3), 3u);
}

TEST(ScheduleForestDeath, RejectsNonLaminarInput) {
  JobSet jobs;
  jobs.add({0, 5, 2, 1.0});
  jobs.add({1, 8, 6, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {4, 5}}});
  ms.add({1, {{1, 4}, {5, 8}}});
  EXPECT_DEATH(build_schedule_forest(jobs, ms), "laminar");
}

TEST(ScheduleForestDeath, RejectsIdleInsideSpan) {
  JobSet jobs;
  jobs.add({0, 10, 2, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 1}, {5, 6}}});  // idle [1,5) while job 0 is open
  EXPECT_DEATH(build_schedule_forest(jobs, ms), "idles inside");
}

TEST(ScheduleForest, IdleBetweenRootsIsAllowed) {
  JobSet jobs;
  jobs.add({0, 3, 3, 1.0});
  jobs.add({10, 14, 4, 2.0});
  MachineSchedule ms;
  ms.add({0, {{0, 3}}});
  ms.add({1, {{10, 14}}});
  const ScheduleForest sf = build_schedule_forest(jobs, ms);
  EXPECT_EQ(sf.forest.roots().size(), 2u);
}

class ScheduleForestProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ScheduleForestProperty, GeneratorInstancesRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    LaminarGenConfig config;
    config.target_jobs = 150;
    const LaminarInstance inst = random_laminar_instance(config, rng);
    ASSERT_TRUE(is_laminar(inst.schedule));

    const ScheduleForest sf = build_schedule_forest(inst.jobs, inst.schedule);
    EXPECT_EQ(sf.size(), inst.jobs.size());

    // Forest value equals schedule value.
    EXPECT_NEAR(sf.forest.total_value(), inst.jobs.total_value(), 1e-6);

    // Parent-child relation is consistent with spans: child span inside the
    // parent's span.
    for (NodeId v = 0; v < sf.size(); ++v) {
      const NodeId p = sf.forest.parent(v);
      if (p == kNoNode) continue;
      EXPECT_TRUE(sf.node_span[p].contains(sf.node_span[v]))
          << "node " << v << " span not inside parent";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleForestProperty,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace pobp
