// Unit tests for segment algebra (Def. 2.1a and the ≺ relation of §2.2).
#include <gtest/gtest.h>

#include "pobp/schedule/segment.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {
namespace {

TEST(Segment, LengthAndEmpty) {
  EXPECT_EQ((Segment{2, 7}).length(), 5);
  EXPECT_TRUE((Segment{3, 3}).empty());
  EXPECT_FALSE((Segment{3, 4}).empty());
}

TEST(Segment, OverlapsHalfOpenSemantics) {
  EXPECT_TRUE((Segment{0, 5}).overlaps({4, 10}));
  EXPECT_FALSE((Segment{0, 5}).overlaps({5, 10}));  // touching is disjoint
  EXPECT_TRUE((Segment{0, 10}).overlaps({3, 4}));
  EXPECT_FALSE((Segment{0, 1}).overlaps({2, 3}));
}

TEST(Segment, Contains) {
  EXPECT_TRUE((Segment{0, 10}).contains(Segment{3, 7}));
  EXPECT_TRUE((Segment{0, 10}).contains(Segment{0, 10}));
  EXPECT_FALSE((Segment{0, 10}).contains(Segment{3, 11}));
  EXPECT_TRUE((Segment{0, 10}).contains(Time{9}));
  EXPECT_FALSE((Segment{0, 10}).contains(Time{10}));  // half-open
}

TEST(Segment, PrecedesIsTheTotalOrderOfDisjointSegments) {
  EXPECT_TRUE(precedes(Segment{0, 3}, Segment{3, 5}));
  EXPECT_TRUE(precedes(Segment{0, 3}, Segment{4, 5}));
  EXPECT_FALSE(precedes(Segment{3, 5}, Segment{0, 3}));
  // Overlapping segments: neither precedes the other.
  EXPECT_FALSE(precedes(Segment{0, 4}, Segment{3, 5}));
}

TEST(Segment, TotalLength) {
  EXPECT_EQ(total_length({{0, 2}, {5, 9}}), 6);
  EXPECT_EQ(total_length({}), 0);
}

TEST(Segment, IsSortedDisjoint) {
  EXPECT_TRUE(is_sorted_disjoint({{0, 2}, {2, 4}, {7, 8}}));
  EXPECT_FALSE(is_sorted_disjoint({{0, 2}, {1, 4}}));     // overlap
  EXPECT_FALSE(is_sorted_disjoint({{2, 4}, {0, 1}}));     // unsorted
  EXPECT_FALSE(is_sorted_disjoint({{0, 2}, {3, 3}}));     // empty member
  EXPECT_TRUE(is_sorted_disjoint({}));
}

TEST(Normalized, SortsMergesAndDropsEmpty) {
  const auto out =
      normalized({{5, 9}, {0, 2}, {2, 5}, {12, 12}, {20, 22}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Segment{0, 9}));
  EXPECT_EQ(out[1], (Segment{20, 22}));
}

TEST(Normalized, MergesOverlapping) {
  const auto out = normalized({{0, 5}, {3, 8}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Segment{0, 8}));
}

TEST(Normalized, EmptyInput) { EXPECT_TRUE(normalized({}).empty()); }

}  // namespace
}  // namespace pobp
