// Tests for pobp::StreamEngine — the streaming serving layer: replay
// determinism, admission control (shed / tenant quota / overload degrade),
// per-request fault containment, and the SubmitOptions batch-API shims.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

std::vector<JobSet> corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 8 + 3 * (i % 9);
    config.max_length = 1 << 6;
    config.horizon = 1 << 12;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

std::string fingerprint(const ScheduleResult& r) {
  return io::schedule_to_csv(r.schedule) + "|" + std::to_string(r.value) +
         "|" + std::to_string(r.unbounded_value);
}

/// Disarms process-wide fault-injection triggers on scope exit so a failing
/// assertion cannot poison later tests.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

// ---------------------------------------------------- determinism ---------

// The serving acceptance bar: the same request stream produces bit-identical
// outcomes for every worker count, queue shape, and pump batch size —
// concurrency changes latency only.
TEST(StreamEngine, ReplayDeterministicAcrossWorkers) {
  const std::vector<JobSet> instances = corpus(64, 404);

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(fingerprint(
        try_schedule_bounded(jobs, {.k = 1, .machine_count = 2}).value()));
  }

  struct Shape {
    std::size_t workers, queue, batch;
  };
  for (const Shape shape : {Shape{1, 1024, 64}, Shape{2, 16, 4},
                            Shape{8, 1024, 1}}) {
    StreamOptions options;
    options.engine.schedule = {.k = 1, .machine_count = 2};
    options.engine.workers = shape.workers;
    options.queue_capacity = shape.queue;
    options.max_batch = shape.batch;
    StreamEngine service(options);

    std::vector<std::future<SolveOutcome>> futures;
    for (const JobSet& jobs : instances) {
      futures.push_back(service.submit(jobs));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const SolveOutcome outcome = futures[i].get();
      ASSERT_TRUE(outcome.has_value()) << "request " << i;
      EXPECT_EQ(fingerprint(*outcome), expected[i])
          << "request " << i << " diverged with " << shape.workers
          << " workers, queue " << shape.queue << ", batch " << shape.batch;
    }
  }
}

// ------------------------------------------------ fault containment -------

// A request that exhausts its op budget fails alone: its future carries a
// POBP-RUN-003 report, every other in-flight request — including later
// submissions from the same tenant — completes normally.  This is the
// "rejections are per-request, not fatal" serving contract.
TEST(StreamEngine, BudgetRejectionsArePerRequestNotFatal) {
  const std::vector<JobSet> instances = corpus(24, 31337);
  StreamOptions options;
  options.engine.schedule = {.k = 1};
  options.engine.workers = 4;
  StreamEngine service(options);

  std::vector<std::future<SolveOutcome>> futures;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SubmitOptions submit;
    if (i % 3 == 1) {
      submit.budget = SolveBudget{.max_ops = 1};  // guaranteed to trip
      submit.degrade = DegradePolicy::kNone;
    }
    futures.push_back(service.submit(instances[i], std::move(submit)));
  }

  std::size_t rejected = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SolveOutcome outcome = futures[i].get();
    if (i % 3 == 1) {
      ASSERT_FALSE(outcome.has_value()) << "request " << i;
      EXPECT_EQ(outcome.error().count("POBP-RUN-003"), 1u);
      ++rejected;
    } else {
      ASSERT_TRUE(outcome.has_value())
          << "request " << i << " poisoned by a neighbour's budget: "
          << (outcome ? "" : outcome.error().first_error());
    }
  }
  EXPECT_EQ(rejected, 8u);
  // The service is still healthy: a fresh request succeeds.
  EXPECT_TRUE(service.submit(instances[0]).get().has_value());
}

// -------------------------------------------------- admission control -----

// pause() gives a deterministic full queue: try_submit sheds with
// POBP-RUN-004 (immediately, no blocking), and the shed request never
// touches the solver; everything admitted before the overflow completes
// after resume().
TEST(StreamEngine, ShedsOnFullQueueWithRun004) {
  const std::vector<JobSet> instances = corpus(8, 77);
  StreamOptions options;
  options.engine.schedule = {.k = 1};
  options.engine.workers = 1;
  options.queue_capacity = 4;
  StreamEngine service(options);
  service.pause();

  std::vector<std::future<SolveOutcome>> admitted;
  for (std::size_t i = 0; i < 4; ++i) {
    admitted.push_back(service.try_submit(instances[i]));
  }
  std::future<SolveOutcome> overflow = service.try_submit(instances[4]);
  const SolveOutcome shed = overflow.get();  // resolves while still paused
  ASSERT_FALSE(shed.has_value());
  EXPECT_EQ(shed.error().count("POBP-RUN-004"), 1u);

  service.resume();
  service.drain();
  for (auto& future : admitted) {
    EXPECT_TRUE(future.get().has_value());
  }

  const auto stats = service.tenant_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.shed, 1u);
  EXPECT_EQ(stats[0].second.completed, 4u);
}

// tenant_max_in_flight caps one tenant without touching its neighbours:
// the quota rejection is POBP-RUN-005 and immediate.
TEST(StreamEngine, TenantQuotaRejectsWithRun005) {
  const std::vector<JobSet> instances = corpus(6, 99);
  StreamOptions options;
  options.engine.schedule = {.k = 1};
  options.engine.workers = 1;
  options.tenant_max_in_flight = 2;
  StreamEngine service(options);
  service.pause();  // hold everything in the queue so in-flight is exact

  const auto submit_as = [&](const std::string& tenant, const JobSet& jobs) {
    SubmitOptions submit;
    submit.tenant = tenant;
    return service.submit(jobs, std::move(submit));
  };

  std::vector<std::future<SolveOutcome>> kept;
  kept.push_back(submit_as("a", instances[0]));
  kept.push_back(submit_as("a", instances[1]));
  std::future<SolveOutcome> over = submit_as("a", instances[2]);
  const SolveOutcome quota = over.get();
  ASSERT_FALSE(quota.has_value());
  EXPECT_EQ(quota.error().count("POBP-RUN-005"), 1u);

  // A different tenant is unaffected by a's quota.
  kept.push_back(submit_as("b", instances[3]));

  service.resume();
  service.drain();
  for (auto& future : kept) {
    EXPECT_TRUE(future.get().has_value());
  }
  for (const auto& [tenant, stats] : service.tenant_stats()) {
    if (tenant == "a") {
      EXPECT_EQ(stats.rejected_quota, 1u);
      EXPECT_EQ(stats.completed, 2u);
    } else {
      EXPECT_EQ(stats.rejected_quota, 0u);
    }
  }
}

// The overload tier: requests admitted while the queue is >= 3/4 full are
// answered on the degraded path instead of being shed — load shedding by
// quality, not by availability.
TEST(StreamEngine, OverloadTierDegradesInsteadOfShedding) {
  const std::vector<JobSet> instances = corpus(8, 1234);
  StreamOptions options;
  options.engine.schedule = {.k = 1};
  options.engine.workers = 1;
  options.queue_capacity = 8;
  options.overload_degrade = DegradePolicy::kApproximate;
  StreamEngine service(options);
  service.pause();

  std::vector<std::future<SolveOutcome>> futures;
  for (const JobSet& jobs : instances) {  // fills the queue exactly
    futures.push_back(service.submit(jobs));
  }
  service.resume();
  std::size_t degraded = 0;
  for (auto& future : futures) {
    const SolveOutcome outcome = future.get();
    ASSERT_TRUE(outcome.has_value());
    // Overload-degraded schedules are still feasible k-bounded schedules.
    if (outcome->degraded) ++degraded;
  }
  // Requests 6 and 7 were admitted at occupancy 6 and 7 (>= 3/4 of 8).
  EXPECT_EQ(degraded, 2u);
}

// ------------------------------------------------------- fault soak -------

// Injected faults at every pipeline site land in exactly the targeted
// requests' futures as POBP-RUN-001; the stream, the pump thread, and all
// other requests keep going.  (The TSan preset runs this under the
// sanitizer; RelWithDebInfo compiles the sites out and skips.)
TEST(StreamEngine, FaultSoakAllSitesContained) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> instances = corpus(32, 618);

  std::vector<std::string> expected;
  for (const JobSet& jobs : instances) {
    expected.push_back(
        fingerprint(try_schedule_bounded(jobs, {.k = 1}).value()));
  }

  // Request id == admission index == fault instance: one hit per site,
  // spread across the stream.
  StreamOptions options;
  options.engine.schedule = {.k = 1};
  options.engine.workers = 4;
  options.engine.fault_injection =
      "alloc@3:1,laminarize@7:1,tm_dp@11:1,left_merge@19:1,validate@29:1";
  StreamEngine service(options);

  std::vector<std::future<SolveOutcome>> futures;
  for (const JobSet& jobs : instances) {
    futures.push_back(service.submit(jobs));
  }
  const std::vector<std::size_t> faulty = {3, 7, 11, 19, 29};
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SolveOutcome outcome = futures[i].get();
    const bool should_fault =
        std::find(faulty.begin(), faulty.end(), i) != faulty.end();
    if (should_fault) {
      ASSERT_FALSE(outcome.has_value()) << "request " << i << " never faulted";
      EXPECT_EQ(outcome.error().count("POBP-RUN-001"), 1u);
    } else {
      ASSERT_TRUE(outcome.has_value()) << "request " << i << " poisoned";
      EXPECT_EQ(fingerprint(*outcome), expected[i]);
    }
  }

  // Disarm and replay the faulted requests through the same service: the
  // arenas the faults unwound through must produce clean results.
  fault::disarm();
  for (const std::size_t i : faulty) {
    const SolveOutcome retried = service.submit(instances[i]).get();
    ASSERT_TRUE(retried.has_value()) << "request " << i << " after disarm";
    EXPECT_EQ(fingerprint(*retried), expected[i]);
  }
}

// ------------------------------------------------- deprecated shims -------

// The one-release compatibility contract of the solve-batch redesign: the
// deprecated no-SubmitOptions overloads are pure delegations — bit-identical
// to passing SubmitOptions{}.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(StreamEngine, DeprecatedBatchShimsDelegate) {
  const std::vector<JobSet> instances = corpus(12, 5150);
  Engine engine({.schedule = {.k = 1}, .workers = 2});

  const std::vector<ScheduleResult> canonical =
      engine.solve_batch(instances, {});
  const std::vector<ScheduleResult> shimmed = engine.solve_batch(instances);
  ASSERT_EQ(shimmed.size(), canonical.size());
  for (std::size_t i = 0; i < shimmed.size(); ++i) {
    EXPECT_EQ(fingerprint(shimmed[i]), fingerprint(canonical[i]));
  }

  std::vector<ScheduleResult> into;
  engine.solve_batch_into(instances, into);
  ASSERT_EQ(into.size(), canonical.size());
  for (std::size_t i = 0; i < into.size(); ++i) {
    EXPECT_EQ(fingerprint(into[i]), fingerprint(canonical[i]));
  }

  const std::vector<SolveOutcome> outcomes = engine.try_solve_batch(instances);
  ASSERT_EQ(outcomes.size(), canonical.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].has_value());
    EXPECT_EQ(fingerprint(*outcomes[i]), fingerprint(canonical[i]));
  }
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace pobp
