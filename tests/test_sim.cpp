// Tests for the online simulator and its reference policies.
#include <gtest/gtest.h>

#include <tuple>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/sim/policies.hpp"
#include "pobp/sim/sim.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

using sim::BudgetEdfPolicy;
using sim::DensityBudgetPolicy;
using sim::EdfPolicy;
using sim::NonPreemptivePolicy;
using sim::SimConfig;
using sim::SimResult;
using sim::simulate;

JobSet feasible_pair() {
  JobSet jobs;
  jobs.add({0, 20, 10, 1.0});
  jobs.add({2, 7, 3, 2.0});
  return jobs;
}

TEST(Sim, EmptyJobSet) {
  EdfPolicy edf;
  const SimResult r = simulate(JobSet{}, edf);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Sim, EdfZeroCostMatchesOfflineEdf) {
  const JobSet jobs = feasible_pair();
  EdfPolicy edf;
  const SimResult r = simulate(jobs, edf);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.overhead_time, 0);
  EXPECT_EQ(r.wasted_time, 0);
  // Identical segments to the offline simulator.
  const auto offline = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(offline);
  EXPECT_EQ(r.schedule.find(0)->segments, offline->find(0)->segments);
  EXPECT_EQ(r.schedule.find(1)->segments, offline->find(1)->segments);
}

TEST(Sim, DispatchCostDelaysWork) {
  JobSet jobs;
  jobs.add({0, 12, 10, 1.0});  // 2 ticks of slack
  EdfPolicy edf;
  EXPECT_EQ(simulate(jobs, edf, {.dispatch_cost = 2}).completed, 1u);
  // 3 ticks of overhead no longer fit the window: the ready filter drops it
  // up front and nothing runs.
  const SimResult late = simulate(jobs, edf, {.dispatch_cost = 3});
  EXPECT_EQ(late.completed, 0u);
  EXPECT_EQ(late.dropped, 1u);
  EXPECT_EQ(late.overhead_time, 0);
}

TEST(Sim, PreemptionCostsTwoDispatches) {
  const JobSet jobs = feasible_pair();  // job 1 preempts job 0 at t=2
  EdfPolicy edf;
  const SimResult r = simulate(jobs, edf, {.dispatch_cost = 1});
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.dispatches, 3u);  // start 0, switch to 1, resume 0
  EXPECT_EQ(r.overhead_time, 3);
  EXPECT_EQ(r.max_preemptions, 1u);
}

TEST(Sim, NonPreemptiveNeverSplitsJobs) {
  Rng rng(3);
  JobGenConfig config;
  config.n = 50;
  config.max_length = 64;
  config.horizon = 4096;
  const JobSet jobs = random_jobs(config, rng);
  NonPreemptivePolicy np;
  const SimResult r = simulate(jobs, np);
  const auto check = validate_machine(jobs, r.schedule, /*k=*/0);
  EXPECT_TRUE(check) << check.error;
  EXPECT_EQ(r.max_preemptions, 0u);
}

TEST(Sim, BudgetZeroBehavesLikeNonPreemptive) {
  Rng rng(5);
  JobGenConfig config;
  config.n = 40;
  config.max_length = 64;
  config.horizon = 2048;
  const JobSet jobs = random_jobs(config, rng);
  NonPreemptivePolicy np;
  BudgetEdfPolicy b0(0);
  EXPECT_DOUBLE_EQ(simulate(jobs, np).value, simulate(jobs, b0).value);
}

class SimBudgetSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SimBudgetSweep, CompletedJobsRespectTheBudget) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  JobGenConfig config;
  config.n = 120;
  config.max_length = 128;
  config.min_laxity = 1.0;
  config.max_laxity = 4.0;
  config.horizon = 4096;  // congested
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);

  BudgetEdfPolicy policy(k);
  for (const Duration cost : {Duration{0}, Duration{2}, Duration{9}}) {
    const SimResult r = simulate(jobs, policy, {.dispatch_cost = cost});
    const auto check = validate_machine(jobs, r.schedule, k);
    EXPECT_TRUE(check) << check.error;
    EXPECT_LE(r.max_preemptions, k);
    EXPECT_EQ(r.completed + r.dropped, jobs.size());
    EXPECT_EQ(r.overhead_time,
              cost * static_cast<Duration>(r.dispatches));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, SimBudgetSweep,
    ::testing::Combine(::testing::Values(21u, 22u, 23u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{5})));

TEST(Sim, UnlimitedBudgetMatchesPlainEdf) {
  Rng rng(31);
  JobGenConfig config;
  config.n = 60;
  config.max_length = 64;
  config.horizon = 2048;
  const JobSet jobs = random_jobs(config, rng);
  EdfPolicy edf;
  BudgetEdfPolicy huge(1000);
  EXPECT_DOUBLE_EQ(simulate(jobs, edf).value, simulate(jobs, huge).value);
}

TEST(Sim, DensityPolicyValidatesAndPrefersDenseJobs) {
  // A long cheap job is running; a short valuable job arrives.
  JobSet jobs;
  jobs.add({0, 100, 50, 1.0});    // density 0.02
  jobs.add({5, 20, 5, 50.0});     // density 10
  DensityBudgetPolicy policy(1, 2.0);
  const SimResult r = simulate(jobs, policy);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 1));
  // The dense job ran as soon as it arrived.
  EXPECT_EQ(r.schedule.find(1)->segments[0], (Segment{5, 10}));
}

TEST(Sim, DensityPolicyRefusesWeakChallengers) {
  JobSet jobs;
  jobs.add({0, 100, 50, 10.0});   // density 0.2
  jobs.add({5, 60, 5, 1.5});      // density 0.3 < 2 × 0.2
  DensityBudgetPolicy policy(1, 2.0);
  const SimResult r = simulate(jobs, policy);
  // Running job is not preempted; challenger still fits afterwards.
  ASSERT_EQ(r.completed, 2u);
  EXPECT_EQ(r.schedule.find(0)->segments.size(), 1u);
}

TEST(Sim, SrptHalvingRulePreemptsOnlyShortChallengers) {
  // The running job has 95 ticks left when the challenger arrives; the
  // challenger's 40 satisfy 2 × 40 <= 95, so the halving rule spends a
  // preemption on it.
  JobSet jobs;
  jobs.add({0, 1000, 100, 1.0});
  jobs.add({5, 500, 40, 2.0});
  sim::SrptBudgetPolicy policy(1);
  const SimResult r = simulate(jobs, policy);
  ASSERT_EQ(r.completed, 2u);
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 1));
  EXPECT_EQ(r.schedule.find(1)->segments[0], (Segment{5, 45}));
  EXPECT_EQ(r.schedule.find(0)->segments.size(), 2u);
}

TEST(Sim, SrptHalvingRuleRefusesNearPeers) {
  // 2 × 60 > 95: a near-peer challenger waits instead of burning budget.
  JobSet jobs;
  jobs.add({0, 1000, 100, 1.0});
  jobs.add({5, 500, 60, 2.0});
  sim::SrptBudgetPolicy policy(1);
  const SimResult r = simulate(jobs, policy);
  ASSERT_EQ(r.completed, 2u);
  EXPECT_EQ(r.schedule.find(0)->segments.size(), 1u);
}

TEST(Sim, LaxityThresholdPreemptsOnlyUrgentWork) {
  // Challenger laxity 50 - 5 - 40 = 5 < 1.0 × 95: it cannot wait for the
  // running job, so the preemption is genuinely necessary.
  JobSet jobs;
  jobs.add({0, 1000, 100, 1.0});
  jobs.add({5, 50, 40, 2.0});
  sim::LaxityThresholdPolicy policy(1, 1.0);
  const SimResult r = simulate(jobs, policy);
  ASSERT_EQ(r.completed, 2u);
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 1));
  EXPECT_EQ(r.schedule.find(1)->segments[0], (Segment{5, 45}));
}

TEST(Sim, LaxityThresholdLetsRelaxedChallengersWait) {
  // Laxity 500 - 5 - 40 = 455 >= 95: the challenger comfortably fits after
  // the running job, so EDF order alone does not justify a preemption.
  JobSet jobs;
  jobs.add({0, 1000, 100, 1.0});
  jobs.add({5, 500, 40, 2.0});
  sim::LaxityThresholdPolicy policy(1, 1.0);
  const SimResult r = simulate(jobs, policy);
  ASSERT_EQ(r.completed, 2u);
  EXPECT_EQ(r.schedule.find(0)->segments.size(), 1u);
}

TEST(Sim, OnlinePoliciesRespectTheBudget) {
  Rng rng(77);
  JobGenConfig config;
  config.n = 120;
  config.max_length = 128;
  config.min_laxity = 1.0;
  config.max_laxity = 4.0;
  config.horizon = 4096;  // congested
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);

  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{5}}) {
    sim::SrptBudgetPolicy srpt(k);
    sim::LaxityThresholdPolicy laxity(k, 1.0);
    for (sim::Policy* policy : {static_cast<sim::Policy*>(&srpt),
                                static_cast<sim::Policy*>(&laxity)}) {
      const SimResult r = simulate(jobs, *policy, {.dispatch_cost = 2});
      const auto check = validate_machine(jobs, r.schedule, k);
      EXPECT_TRUE(check) << policy->name() << " k=" << k << ": "
                         << check.error;
      EXPECT_LE(r.max_preemptions, k) << policy->name();
      EXPECT_EQ(r.completed + r.dropped, jobs.size());
    }
  }
}

TEST(Sim, AccountingIdentity) {
  Rng rng(41);
  JobGenConfig config;
  config.n = 80;
  config.max_length = 64;
  config.max_laxity = 2.0;
  config.horizon = 1024;  // congested: drops and waste happen
  const JobSet jobs = random_jobs(config, rng);
  EdfPolicy edf;
  const SimResult r = simulate(jobs, edf, {.dispatch_cost = 3});
  EXPECT_EQ(r.completed + r.dropped, jobs.size());
  // All machine time categories are non-negative and useful time matches
  // the completed jobs exactly.
  Duration useful = 0;
  for (const auto& a : r.schedule.assignments()) {
    useful += total_length(a.segments);
  }
  EXPECT_EQ(useful, r.useful_time);
  EXPECT_GE(r.wasted_time, 0);
}

}  // namespace
}  // namespace pobp
