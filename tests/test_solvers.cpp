// Tests for the ground-truth solvers (B&B OPT∞, bitmask-DP OPT₀, the
// slot-DP OPT_k oracle, and the greedy heuristic).
#include <gtest/gtest.h>

#include <vector>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

/// Exhaustive reference for OPT∞ (2^n subsets, interval-condition check).
Value brute_opt_infinity(const JobSet& jobs) {
  const std::size_t n = jobs.size();
  Value best = 0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<JobId> subset;
    Value value = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        subset.push_back(static_cast<JobId>(i));
        value += jobs[static_cast<JobId>(i)].value;
      }
    }
    if (value > best && preemptive_feasible(jobs, subset)) best = value;
  }
  return best;
}

/// Exhaustive reference for OPT₀ (2^n subsets × n! orders, tiny n only).
Value brute_opt_zero(const JobSet& jobs) {
  const std::size_t n = jobs.size();
  std::vector<JobId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<JobId>(i);
  std::sort(perm.begin(), perm.end());
  Value best = 0;
  do {
    // Greedy earliest placement along this order; every subset of a
    // feasible prefix-respecting placement is covered by some permutation.
    Time t = std::numeric_limits<Time>::min() / 4;
    Value value = 0;
    for (const JobId id : perm) {
      const Job& j = jobs[id];
      const Time done = std::max(t, j.release) + j.length;
      if (done <= j.deadline) {
        t = done;
        value += j.value;
      }
      // else: skip the job (equivalent to excluding it from the subset)
    }
    best = std::max(best, value);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(OptInfinity, EmptyAndSingle) {
  JobSet jobs;
  const std::vector<JobId> none;
  EXPECT_DOUBLE_EQ(opt_infinity(jobs, none).value, 0.0);
  jobs.add({0, 5, 3, 7.0});
  const SubsetSolution s = opt_infinity(jobs, all_ids(jobs));
  EXPECT_DOUBLE_EQ(s.value, 7.0);
  EXPECT_EQ(s.members.size(), 1u);
}

TEST(OptInfinity, PicksValuableConflictingJob) {
  JobSet jobs;
  jobs.add({0, 4, 4, 1.0});
  jobs.add({0, 4, 4, 9.0});
  const SubsetSolution s = opt_infinity(jobs, all_ids(jobs));
  EXPECT_DOUBLE_EQ(s.value, 9.0);
  ASSERT_EQ(s.members.size(), 1u);
  EXPECT_EQ(s.members[0], 1u);
}

TEST(OptInfinity, MembersAreAlwaysFeasible) {
  Rng rng(3);
  JobGenConfig config;
  config.n = 14;
  config.max_length = 64;
  config.horizon = 400;  // congested
  config.max_laxity = 3.0;
  const JobSet jobs = random_jobs(config, rng);
  const SubsetSolution s = opt_infinity(jobs, all_ids(jobs));
  EXPECT_TRUE(preemptive_feasible(jobs, s.members));
  EXPECT_TRUE(edf_schedule(jobs, s.members).has_value());
}

class OptInfinityVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptInfinityVsBrute, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    JobGenConfig config;
    config.n = 10;
    config.min_length = 1;
    config.max_length = 32;
    config.max_laxity = 3.0;
    config.horizon = 200;
    const JobSet jobs = random_jobs(config, rng);
    EXPECT_DOUBLE_EQ(opt_infinity(jobs, all_ids(jobs)).value,
                     brute_opt_infinity(jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptInfinityVsBrute,
                         ::testing::Values(21, 22, 23, 24));

TEST(OptZero, SimpleCases) {
  JobSet jobs;
  jobs.add({0, 4, 4, 1.0});
  jobs.add({0, 8, 4, 2.0});
  const SubsetSolution s = opt_zero(jobs, all_ids(jobs));
  EXPECT_DOUBLE_EQ(s.value, 3.0);  // sequential: [0,4) then [4,8)
}

TEST(OptZero, RespectsReleases) {
  JobSet jobs;
  jobs.add({4, 8, 4, 1.0});
  jobs.add({1, 8, 4, 1.0});
  // Job 0 must occupy exactly [4,8); job 1 cannot finish before 5 nor start
  // after 4 — they collide, so only one fits.
  const SubsetSolution s = opt_zero(jobs, all_ids(jobs));
  EXPECT_DOUBLE_EQ(s.value, 1.0);
}

class OptZeroVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptZeroVsBrute, MatchesPermutationEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    JobGenConfig config;
    config.n = 7;
    config.min_length = 1;
    config.max_length = 16;
    config.max_laxity = 4.0;
    config.horizon = 100;
    const JobSet jobs = random_jobs(config, rng);
    EXPECT_DOUBLE_EQ(opt_zero(jobs, all_ids(jobs)).value,
                     brute_opt_zero(jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptZeroVsBrute,
                         ::testing::Values(31, 32, 33, 34));

TEST(OptKSlots, MatchesOptZeroAtKZero) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    JobGenConfig config;
    config.n = 4;
    config.min_length = 1;
    config.max_length = 4;
    config.max_laxity = 3.0;
    config.horizon = 24;
    const JobSet jobs = random_jobs(config, rng);
    const auto slots = opt_k_slots(jobs, 0);
    ASSERT_TRUE(slots.has_value());
    EXPECT_DOUBLE_EQ(*slots, opt_zero(jobs, all_ids(jobs)).value);
  }
}

TEST(OptKSlots, MatchesOptInfinityForLargeK) {
  Rng rng(6);
  for (int trial = 0; trial < 6; ++trial) {
    JobGenConfig config;
    config.n = 4;
    config.min_length = 1;
    config.max_length = 4;
    config.max_laxity = 3.0;
    config.horizon = 24;
    const JobSet jobs = random_jobs(config, rng);
    // k = 30 ≥ horizon: effectively unbounded preemption.  The default
    // state-space guard is a conservative product bound, so raise it — the
    // reachable set is far smaller.
    const auto slots = opt_k_slots(jobs, 30, std::size_t{1} << 34);
    ASSERT_TRUE(slots.has_value());
    EXPECT_DOUBLE_EQ(*slots, opt_infinity(jobs, all_ids(jobs)).value);
  }
}

TEST(OptKSlots, MonotoneInK) {
  Rng rng(7);
  JobGenConfig config;
  config.n = 4;
  config.min_length = 2;
  config.max_length = 5;
  config.max_laxity = 3.0;
  config.horizon = 30;
  const JobSet jobs = random_jobs(config, rng);
  Value previous = 0;
  for (const std::size_t k : {0u, 1u, 2u, 3u}) {
    const auto v = opt_k_slots(jobs, k, std::size_t{1} << 34);
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, previous);
    previous = *v;
  }
}

TEST(OptKSlots, RefusesHugeStateSpaces) {
  JobSet jobs;
  for (int i = 0; i < 20; ++i) jobs.add({0, 1 << 20, 1 << 10, 1.0});
  EXPECT_FALSE(opt_k_slots(jobs, 1).has_value());
}

TEST(GreedyInfinity, FeasibleAndDominatedByExact) {
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    JobGenConfig config;
    config.n = 14;
    config.max_length = 32;
    config.horizon = 300;
    config.max_laxity = 3.0;
    const JobSet jobs = random_jobs(config, rng);
    const MachineSchedule greedy = greedy_infinity(jobs, all_ids(jobs));
    const auto check = validate_machine(jobs, greedy);
    EXPECT_TRUE(check) << check.error;
    EXPECT_LE(greedy.total_value(jobs),
              opt_infinity(jobs, all_ids(jobs)).value + 1e-9);
  }
}

TEST(GreedyInfinityMulti, NonMigrativeAndMonotone) {
  Rng rng(9);
  JobGenConfig config;
  config.n = 40;
  config.max_length = 64;
  config.horizon = 500;  // congested
  config.max_laxity = 2.5;
  const JobSet jobs = random_jobs(config, rng);
  Value previous = 0;
  for (const std::size_t m : {1u, 2u, 3u}) {
    const Schedule s = greedy_infinity_multi(jobs, all_ids(jobs), m);
    const auto check = validate(jobs, s);
    ASSERT_TRUE(check) << check.error;
    EXPECT_GE(s.total_value(jobs), previous * (1 - 1e-12));
    previous = s.total_value(jobs);
  }
}

}  // namespace
}  // namespace pobp
