// Unit tests for the pobp::srclint source-analysis pass: the scanner's
// token/comment channels, each POBP-SRC rule firing and staying quiet,
// inline suppressions, and the layer map (docs/LINT.md).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pobp/diag/registry.hpp"
#include "pobp/srclint/include_graph.hpp"
#include "pobp/srclint/rules.hpp"
#include "pobp/srclint/scanner.hpp"

namespace pobp::srclint {
namespace {

diag::Report lint(std::string path, std::string_view content,
                  std::vector<std::string> rules = {}) {
  const SourceFile file = scan_source(std::move(path), content);
  LintOptions options;
  options.rules = std::move(rules);
  diag::Report report;
  lint_source(file, options, report);
  return report;
}

std::size_t count_rule(const diag::Report& report, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(report.diagnostics().begin(), report.diagnostics().end(),
                    [&](const auto& d) { return d.rule == rule; }));
}

// --- scanner ----------------------------------------------------------------

TEST(Scanner, TokenizesPastCommentsAndStrings) {
  const SourceFile file = scan_source("src/core/x.cpp",
                                      "// new in a comment\n"
                                      "const char* s = \"new delete\";\n"
                                      "/* malloc(3) */ int n = 0b10'000;\n");
  for (const Token& t : file.tokens) {
    EXPECT_FALSE(t.kind == TokenKind::kIdentifier &&
                 (t.text == "new" || t.text == "delete" || t.text == "malloc"))
        << "literal/comment content leaked into tokens at line " << t.line;
  }
}

TEST(Scanner, RawStringsDoNotLeakTokens) {
  const SourceFile file = scan_source(
      "src/core/x.cpp", "auto s = R\"(new delete rand() )\";\nint y;\n");
  EXPECT_EQ(count_rule(lint("src/core/x.cpp",
                            "auto s = R\"(new delete rand() )\";\n"),
                       diag::rules::kSrcNakedAlloc),
            0u);
  ASSERT_FALSE(file.tokens.empty());
}

TEST(Scanner, RecordsIncludesWithQuoteForm) {
  const SourceFile file =
      scan_source("src/core/x.cpp",
                  "#include \"pobp/diag/diagnostic.hpp\"\n#include <vector>\n");
  ASSERT_EQ(file.includes.size(), 2u);
  EXPECT_EQ(file.includes[0].path, "pobp/diag/diagnostic.hpp");
  EXPECT_FALSE(file.includes[0].angled);
  EXPECT_TRUE(file.includes[1].angled);
}

TEST(Scanner, FindsFunctionSpansAndNoallocMarkers) {
  const SourceFile file = scan_source("src/core/x.cpp",
                                      "// POBP_NOALLOC\n"
                                      "int fast(int n) { return n; }\n"
                                      "void fill_into(int& x) { x = 1; }\n");
  ASSERT_EQ(file.functions.size(), 2u);
  EXPECT_EQ(file.functions[0].name, "fast");
  EXPECT_TRUE(file.functions[0].noalloc_marked);
  EXPECT_EQ(file.functions[1].name, "fill_into");
  EXPECT_FALSE(file.functions[1].noalloc_marked);
}

TEST(Scanner, SuppressionCoversCommentLineAndNextLine) {
  const SourceFile file = scan_source("src/core/x.cpp",
                                      "int a;\n"
                                      "// POBP-SRC-001: reason\n"
                                      "int b;\n"
                                      "int c;\n");
  EXPECT_FALSE(file.suppressed("POBP-SRC-001", 1));
  EXPECT_TRUE(file.suppressed("POBP-SRC-001", 2));
  EXPECT_TRUE(file.suppressed("POBP-SRC-001", 3));
  EXPECT_FALSE(file.suppressed("POBP-SRC-001", 4));
  EXPECT_FALSE(file.suppressed("POBP-SRC-002", 3));
}

// --- rules ------------------------------------------------------------------

TEST(Rules, NakedAllocFires) {
  const diag::Report report =
      lint("src/core/x.cpp", "int* p = new int[4];\ndelete[] p;\n");
  EXPECT_EQ(count_rule(report, diag::rules::kSrcNakedAlloc), 2u);
}

TEST(Rules, AllocAllowlistAndGrammarPositionsStayQuiet) {
  EXPECT_TRUE(lint("src/util/allocspy.cpp", "void* p = malloc(1);\n").ok());
  EXPECT_TRUE(lint("src/core/x.cpp",
                   "struct S { S(const S&) = delete;\n"
                   "  void* operator new(unsigned long); };\n")
                  .ok());
}

TEST(Rules, HotPathAllocFiresOnlyInProducers) {
  const std::string source =
      "void fill_into(V& out) { out.p = new int; }\n"
      "void build(V& out) { out.p = new int; }\n";
  const diag::Report report = lint("src/core/x.cpp", source,
                                   {std::string(diag::rules::kSrcHotPathAlloc)});
  EXPECT_EQ(count_rule(report, diag::rules::kSrcHotPathAlloc), 1u);
}

TEST(Rules, AtomicOrderScopedToConcurrentModules) {
  const std::string source = "int f(A& a) { return a.counter.load(); }\n";
  EXPECT_EQ(count_rule(lint("src/engine/x.cpp", source),
                       diag::rules::kSrcImplicitMemoryOrder),
            1u);
  // Explicit order is clean; out-of-scope modules are exempt.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "int f(A& a) { return a.c.load(std::memory_order_acquire); }\n")
                  .ok());
  EXPECT_TRUE(lint("src/io/x.cpp", source).ok());
}

TEST(Rules, NondeterminismFlagsBansAndUnorderedIteration) {
  const std::string source =
      "int seed() { return rand(); }\n"
      "void walk(std::unordered_map<int,int> m) {\n"
      "  for (const auto& e : m) { (void)e; }\n"
      "}\n";
  const diag::Report report = lint("src/core/x.cpp", source);
  EXPECT_EQ(count_rule(report, diag::rules::kSrcNondeterminism), 2u);
  // Lookup-only use of an unordered container is fine *for this rule*;
  // the default-hash ban (POBP-SRC-010) owns that site on result paths.
  const diag::Report lookup =
      lint("src/core/x.cpp",
           "int get(std::unordered_map<int,int>& m) { return m[3]; }\n");
  EXPECT_EQ(count_rule(lookup, diag::rules::kSrcNondeterminism), 0u);
  EXPECT_EQ(count_rule(lookup, diag::rules::kSrcDefaultHash), 1u);
}

TEST(Rules, DefaultHashBannedOnResultPaths) {
  const std::string source =
      "std::unordered_map<std::uint64_t, double> memo;\n"
      "std::size_t key(const std::string& s) {\n"
      "  return std::hash<std::string>{}(s);\n"
      "}\n";
  // Two findings: the unordered container and the std::hash instantiation.
  EXPECT_EQ(count_rule(lint("src/engine/x.cpp", source),
                       diag::rules::kSrcDefaultHash),
            2u);
  EXPECT_EQ(count_rule(lint("src/solvers/x.cpp", source),
                       diag::rules::kSrcDefaultHash),
            2u);
  // Out of scope: IO / tools never key results.
  EXPECT_TRUE(lint("src/io/x.cpp", source).ok());
  EXPECT_TRUE(lint("tools/pobp_cli.cpp", source).ok());
  // A qualified non-std `hash` identifier stays quiet.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "int f() { return my::hash<int>{}(3); }\n")
                  .ok());
  // Site suppression works like every other POBP-SRC rule.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "// POBP-SRC-010: lookup only; order never observed\n"
                   "std::unordered_map<int, int> memo;\n")
                  .ok());
}

TEST(Rules, LayeringUsesDeclaredMap) {
  EXPECT_EQ(module_of("src/schedule/edf.cpp"), "schedule");
  EXPECT_EQ(module_of("tools/pobp_cli.cpp"), "<app>");
  EXPECT_EQ(module_of("src/include/pobp/pobp.hpp"), "<app>");

  const diag::Report up =
      lint("src/schedule/x.cpp", "#include \"pobp/engine/engine.hpp\"\n");
  EXPECT_EQ(count_rule(up, diag::rules::kSrcLayering), 1u);
  EXPECT_TRUE(
      lint("src/schedule/x.cpp", "#include \"pobp/diag/registry.hpp\"\n").ok());
  EXPECT_TRUE(
      lint("src/engine/x.cpp", "#include \"pobp/core/pobp.hpp\"\n").ok());
}

TEST(Rules, ThrowOnlyFlaggedInsideTryBoundaries) {
  const std::string source =
      "bool try_load(int x) { if (!x) throw 1; return true; }\n"
      "void load(int x) { if (!x) throw 1; }\n";
  const diag::Report report = lint("src/core/x.cpp", source);
  EXPECT_EQ(count_rule(report, diag::rules::kSrcThrowInContainment), 1u);
}

TEST(Rules, BlockingSubmitScopedToTheQueueFiles) {
  const std::string source =
      "bool push(Q& q) { std::mutex m; return q.wait_for(m); }\n";
  // Two findings in the hot-path files: the mutex type and the wait_for
  // call; the same code anywhere else is out of scope.
  EXPECT_EQ(count_rule(lint("src/engine/submit.cpp", source),
                       diag::rules::kSrcBlockingSubmit),
            2u);
  EXPECT_EQ(count_rule(lint("src/engine/include/pobp/engine/submit.hpp",
                            source),
                       diag::rules::kSrcBlockingSubmit),
            2u);
  EXPECT_TRUE(lint("src/engine/serve.cpp", source).ok());
  // Non-blocking queue code stays quiet in scope.
  EXPECT_TRUE(lint("src/engine/submit.cpp",
                   "bool push(Q& q) { return q.head.fetch_add(1, "
                   "std::memory_order_acq_rel) != 0; }\n")
                  .ok());
}

TEST(Rules, UnboundedRetryFlagsSleepLoopsWithoutABound) {
  // A sleep in a loop with no attempt cap and no budget poll is the
  // defect; the same loop bounded either way is clean, and the rule is
  // scoped to src/engine/.
  const std::string unbounded =
      "void spin() {\n"
      "  while (!probe()) {\n"
      "    std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(count_rule(lint("src/engine/x.cpp", unbounded),
                       diag::rules::kSrcUnboundedRetry),
            1u);
  EXPECT_TRUE(lint("src/core/x.cpp", unbounded).ok());  // out of scope

  // Attempt-capped loop: the induction variable is the visible bound.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "void spin() {\n"
                   "  for (int attempt = 0; attempt < 5; ++attempt) {\n"
                   "    std::this_thread::sleep_for(backoff(attempt));\n"
                   "  }\n"
                   "}\n")
                  .ok());
  // Budget-bounded loop: guard.poll() raises past the deadline.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "void spin(BudgetGuard& guard) {\n"
                   "  while (!probe()) {\n"
                   "    guard.poll();\n"
                   "    std::this_thread::sleep_for(delay());\n"
                   "  }\n"
                   "}\n")
                  .ok());
  // A sleep outside any loop is not a retry loop.
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "void pause_once() {\n"
                   "  std::this_thread::sleep_for(delay());\n"
                   "}\n")
                  .ok());
  // Condition-variable waits are exempt (predicate-parked, not a blind
  // clock).
  EXPECT_TRUE(lint("src/engine/x.cpp",
                   "void park(CV& cv, L& lk) {\n"
                   "  while (!done()) { cv.wait_for(lk, delay()); }\n"
                   "}\n")
                  .ok());
}

TEST(Rules, RawIntrinsicsBannedOutsideTheSimdWrapper) {
  const std::string source =
      "long f(const long* p) {\n"
      "  __m128i v = _mm_loadu_si128((const __m128i*)p);\n"
      "  return _mm_cvtsi128_si64(v);\n"
      "}\n";
  // Four findings: the two __m128i type uses and the two _mm_* calls.
  EXPECT_EQ(count_rule(lint("src/schedule/kernels.cpp", source),
                       diag::rules::kSrcRawIntrinsics),
            4u);
  // The wrapper itself is the one sanctioned home.
  EXPECT_TRUE(lint("src/util/include/pobp/util/simd.hpp", source).ok());
  // NEON spellings count too (vld/vst + lane digit).
  EXPECT_EQ(count_rule(lint("src/bas/tm.cpp",
                            "long g(const long* p) {\n"
                            "  return vgetq_lane_s64(vld1q_s64(p), 0);\n"
                            "}\n"),
                       diag::rules::kSrcRawIntrinsics),
            1u);
  // Ordinary identifiers that merely start with v or _ stay quiet.
  EXPECT_TRUE(lint("src/bas/tm.cpp",
                   "int h(int vstep, int _max) { return vstep + _max; }\n")
                  .ok());
}

TEST(Rules, InlineSuppressionSilencesOneRuleAtOneSite) {
  const diag::Report report =
      lint("src/core/x.cpp",
           "int* a = new int;  // POBP-SRC-001: intentional\n"
           "int* b = new int;\n");
  EXPECT_EQ(count_rule(report, diag::rules::kSrcNakedAlloc), 1u);
}

TEST(Rules, FindingsCarrySourceLocations) {
  const diag::Report report = lint("src/core/x.cpp", "int* p = new int;\n");
  ASSERT_EQ(report.diagnostics().size(), 1u);
  const auto& where = report.diagnostics()[0].where;
  ASSERT_TRUE(where.file.has_value());
  EXPECT_EQ(*where.file, "src/core/x.cpp");
  ASSERT_TRUE(where.line.has_value());
  EXPECT_EQ(*where.line, 1u);
}

TEST(Registry, SrcRulesAreCatalogued) {
  for (const std::string_view id :
       {diag::rules::kSrcNakedAlloc, diag::rules::kSrcHotPathAlloc,
        diag::rules::kSrcImplicitMemoryOrder, diag::rules::kSrcNondeterminism,
        diag::rules::kSrcLayering, diag::rules::kSrcThrowInContainment,
        diag::rules::kSrcBlockingSubmit, diag::rules::kSrcUnboundedRetry,
        diag::rules::kSrcRawIntrinsics, diag::rules::kSrcDefaultHash}) {
    EXPECT_NE(diag::find_rule(id), nullptr) << id;
  }
}

}  // namespace
}  // namespace pobp::srclint
