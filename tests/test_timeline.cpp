// Unit + property tests for IdleTimeline (the structure behind Alg. 2).
#include <gtest/gtest.h>

#include <vector>

#include "pobp/schedule/timeline.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(IdleTimeline, StartsFullyIdle) {
  IdleTimeline t;
  EXPECT_TRUE(t.is_idle({0, 1000}));
  EXPECT_EQ(t.run_count(), 0u);
}

TEST(IdleTimeline, OccupyMarksBusy) {
  IdleTimeline t;
  t.occupy({10, 20});
  EXPECT_FALSE(t.is_idle({10, 20}));
  EXPECT_FALSE(t.is_idle({15, 16}));
  EXPECT_FALSE(t.is_idle({5, 11}));
  EXPECT_TRUE(t.is_idle({0, 10}));
  EXPECT_TRUE(t.is_idle({20, 30}));
}

TEST(IdleTimeline, CoalescesAdjacentRuns) {
  IdleTimeline t;
  t.occupy({10, 20});
  t.occupy({20, 30});
  t.occupy({0, 10});
  EXPECT_EQ(t.run_count(), 1u);
  EXPECT_EQ(t.busy_in({-5, 100}).size(), 1u);
  EXPECT_EQ(t.busy_in({-5, 100})[0], (Segment{0, 30}));
}

TEST(IdleTimelineDeath, DoubleOccupyAborts) {
  IdleTimeline t;
  t.occupy({10, 20});
  EXPECT_DEATH(t.occupy({15, 25}), "non-idle");
}

TEST(IdleTimeline, NextIdleSkipsBusyRuns) {
  IdleTimeline t;
  t.occupy({10, 20});
  t.occupy({30, 40});
  const Segment window{0, 100};
  auto gap = t.next_idle(0, window);
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, (Segment{0, 10}));
  gap = t.next_idle(gap->end, window);
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, (Segment{20, 30}));
  gap = t.next_idle(gap->end, window);
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, (Segment{40, 100}));
  EXPECT_FALSE(t.next_idle(gap->end, window));
}

TEST(IdleTimeline, NextIdleFromInsideBusyRun) {
  IdleTimeline t;
  t.occupy({10, 20});
  const auto gap = t.next_idle(12, {0, 100});
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, (Segment{20, 100}));
}

TEST(IdleTimeline, NextIdleClipsToWindow) {
  IdleTimeline t;
  t.occupy({10, 20});
  const auto gap = t.next_idle(0, {15, 18});
  EXPECT_FALSE(gap);  // window entirely busy
  const auto gap2 = t.next_idle(0, {15, 25});
  ASSERT_TRUE(gap2);
  EXPECT_EQ(*gap2, (Segment{20, 25}));
}

TEST(IdleTimeline, IdleInAndBusyInPartitionWindow) {
  IdleTimeline t;
  t.occupy({10, 20});
  t.occupy({25, 26});
  const Segment window{5, 30};
  const auto idle = t.idle_in(window);
  const auto busy = t.busy_in(window);
  ASSERT_EQ(idle.size(), 3u);
  EXPECT_EQ(idle[0], (Segment{5, 10}));
  EXPECT_EQ(idle[1], (Segment{20, 25}));
  EXPECT_EQ(idle[2], (Segment{26, 30}));
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_EQ(t.idle_time(window) + t.busy_time(window), window.length());
  EXPECT_EQ(t.busy_time(window), 11);
}

// ------------------------------------------------------------- property --

/// Reference implementation: a plain bool array over [0, H).
class NaiveTimeline {
 public:
  explicit NaiveTimeline(std::size_t horizon) : busy_(horizon, false) {}

  bool is_idle(Segment s) const {
    for (Time t = s.begin; t < s.end; ++t) {
      if (busy_[static_cast<std::size_t>(t)]) return false;
    }
    return true;
  }

  void occupy(Segment s) {
    for (Time t = s.begin; t < s.end; ++t) {
      busy_[static_cast<std::size_t>(t)] = true;
    }
  }

  std::vector<Segment> idle_in(Segment window) const {
    std::vector<Segment> out;
    Time t = window.begin;
    while (t < window.end) {
      while (t < window.end && busy_[static_cast<std::size_t>(t)]) ++t;
      if (t >= window.end) break;
      Time e = t;
      while (e < window.end && !busy_[static_cast<std::size_t>(e)]) ++e;
      out.push_back({t, e});
      t = e;
    }
    return out;
  }

 private:
  std::vector<bool> busy_;
};

class TimelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineProperty, MatchesNaiveReferenceUnderRandomOps) {
  constexpr Time kHorizon = 200;
  Rng rng(GetParam());
  IdleTimeline fast;
  NaiveTimeline slow(kHorizon);

  for (int step = 0; step < 300; ++step) {
    const Time a = rng.uniform_int(0, kHorizon - 1);
    const Time b = rng.uniform_int(a + 1, kHorizon);
    const Segment s{a, b};
    EXPECT_EQ(fast.is_idle(s), slow.is_idle(s)) << "step " << step;
    if (slow.is_idle(s) && rng.bernoulli(0.5)) {
      fast.occupy(s);
      slow.occupy(s);
    }
    // Compare full idle decomposition of a random window.
    const Time wa = rng.uniform_int(0, kHorizon - 1);
    const Time wb = rng.uniform_int(wa + 1, kHorizon);
    EXPECT_EQ(fast.idle_in({wa, wb}), slow.idle_in({wa, wb}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pobp
