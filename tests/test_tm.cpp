// Tests for the TM dynamic program (§3.2): exactness against the
// brute-force oracle, the Lemma A.2 closed forms, and the Theorem 3.9 loss
// bound on random forests.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pobp/bas/tm.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(Tm, SingleNode) {
  Forest f;
  f.add(7);
  const TmResult r = tm_optimal_bas(f, 1);
  EXPECT_DOUBLE_EQ(r.value, 7.0);
  EXPECT_TRUE(r.selection.kept(0));
}

TEST(Tm, LeafFormula) {
  // Procedure TM lines 1–3: t(leaf) = val, m(leaf) = 0.
  Forest f;
  f.add(5);
  f.add(9, 0);
  const TmResult r = tm_optimal_bas(f, 1);
  EXPECT_DOUBLE_EQ(r.t[1], 9.0);
  EXPECT_DOUBLE_EQ(r.m[1], 0.0);
  EXPECT_DOUBLE_EQ(r.t[0], 14.0);
  EXPECT_DOUBLE_EQ(r.m[0], 9.0);
}

TEST(Tm, StarPrefersLeavesWhenRootIsCheap) {
  Forest f;
  f.add(1);
  for (int i = 0; i < 5; ++i) f.add(10, 0);
  const TmResult r = tm_optimal_bas(f, 1);
  EXPECT_DOUBLE_EQ(r.value, 50.0);
  EXPECT_FALSE(r.selection.kept(0));
}

TEST(Tm, PicksTopKChildren) {
  Forest f;
  f.add(100);
  f.add(5, 0);
  f.add(9, 0);
  f.add(7, 0);
  const TmResult r = tm_optimal_bas(f, 2);
  EXPECT_DOUBLE_EQ(r.value, 116.0);  // 100 + 9 + 7
  EXPECT_TRUE(r.selection.kept(0));
  EXPECT_FALSE(r.selection.kept(1));
  EXPECT_TRUE(r.selection.kept(2));
  EXPECT_TRUE(r.selection.kept(3));
}

TEST(Tm, ForestIsUnionOfTreeSolutions) {
  // Obs. 3.5: per-tree optimality composes.
  Forest f;
  f.add(1);          // tree A root
  f.add(10, 0);
  f.add(10, 0);
  f.add(50);         // tree B root (id 3)
  f.add(2, 3);
  const TmResult r = tm_optimal_bas(f, 1);
  EXPECT_DOUBLE_EQ(r.value, 20.0 + 52.0);
}

TEST(Tm, PrunedUpAllowsMixedChildren) {
  // Root cheap; one child subtree best retained, another best pruned-up —
  // Obs. 3.8(b).
  Forest f;
  f.add(1);            // 0 root (will be pruned-up)
  f.add(100, 0);       // 1: retained child
  f.add(1, 0);         // 2: cheap child, itself pruned-up
  f.add(60, 2);        // 3
  f.add(60, 2);        // 4  (2's two children each worth more than 2+one)
  const TmResult r = tm_optimal_bas(f, 1);
  // Best: delete 0 and 2; keep 1, 3, 4 as separate components = 220.
  EXPECT_DOUBLE_EQ(r.value, 220.0);
  EXPECT_TRUE(validate_bas(f, r.selection, 1));
}

// ---- exhaustive cross-validation against the brute-force oracle ---------

class TmVsBrute
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(TmVsBrute, MatchesBruteForceOnRandomForests) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    ForestGenConfig config;
    config.nodes = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    config.max_degree = 1 + static_cast<std::size_t>(rng.uniform_int(1, 4));
    config.root_probability = 0.2;
    const Forest f = random_forest(config, rng);

    const TmResult tm = tm_optimal_bas(f, k);
    const auto check = validate_bas(f, tm.selection, k);
    ASSERT_TRUE(check) << check.error;
    EXPECT_NEAR(tm.selection.value(f), tm.value, 1e-9);

    const SubForest brute = brute_force_bas(f, k);
    EXPECT_NEAR(tm.value, brute.value(f), 1e-9)
        << "trial " << trial << " n=" << f.size() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, TmVsBrute,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3})));

// ---- Lemma A.2: exact t/m on the Appendix-A tree -------------------------

class LemmaA2 : public ::testing::TestWithParam<
                    std::tuple<std::size_t, std::int64_t, std::size_t>> {};

TEST_P(LemmaA2, TmValuesMatchClosedForm) {
  const auto [k, K, L] = GetParam();
  const BasLowerBoundTree lb = bas_lower_bound_tree(k, K, L);
  const TmResult r = tm_optimal_bas(lb.forest, k);

  // Node ids are level-contiguous; check one node per level (they are all
  // identical by symmetry) plus the root.
  NodeId level_start = 0;
  std::size_t level_size = 1;
  for (std::size_t level = 0; level <= L; ++level) {
    EXPECT_DOUBLE_EQ(r.t[level_start],
                     static_cast<double>(lb.expected_t[level]))
        << "t at level " << level;
    EXPECT_DOUBLE_EQ(r.m[level_start],
                     static_cast<double>(lb.expected_m[level]))
        << "m at level " << level;
    level_start += static_cast<NodeId>(level_size);
    level_size *= static_cast<std::size_t>(K);
  }
  // Lemma A.2 remark: t > m everywhere, so TM retains the root.
  EXPECT_DOUBLE_EQ(r.value, static_cast<double>(lb.opt_bas_value));
  EXPECT_TRUE(r.selection.kept(0));
}

INSTANTIATE_TEST_SUITE_P(
    Params, LemmaA2,
    ::testing::Values(std::make_tuple(std::size_t{1}, std::int64_t{2},
                                      std::size_t{6}),
                      std::make_tuple(std::size_t{1}, std::int64_t{3},
                                      std::size_t{5}),
                      std::make_tuple(std::size_t{2}, std::int64_t{4},
                                      std::size_t{4}),
                      std::make_tuple(std::size_t{3}, std::int64_t{6},
                                      std::size_t{3}),
                      std::make_tuple(std::size_t{2}, std::int64_t{3},
                                      std::size_t{5})));

// Theorem 3.20 with K = 2k: the ratio total/OPT is Ω(log_{k+1} n).
TEST(Theorem320, LossGrowsWithDepth) {
  const std::size_t k = 1;
  double previous_ratio = 0;
  for (std::size_t L = 2; L <= 10; L += 2) {
    const BasLowerBoundTree lb = bas_lower_bound_tree(k, 2 * k, L);
    const TmResult r = tm_optimal_bas(lb.forest, k);
    const double ratio = static_cast<double>(lb.total_value) / r.value;
    EXPECT_GT(ratio, previous_ratio);  // strictly growing with L
    previous_ratio = ratio;
    // OPT_k < K/(K−k) = 2 per unit level value (Cor. A.3, scaled by K^L):
    EXPECT_LT(r.value, 2.0 * std::pow(2.0, static_cast<double>(L)));
  }
}

// Theorem 3.9: loss factor of TM ≤ log_{k+1} n on arbitrary forests.
class Theorem39 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem39, LossFactorWithinBoundOnRandomForests) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    ForestGenConfig config;
    config.nodes = 2000;
    config.max_degree = 10;
    config.value_dist = trial % 2 == 0
                            ? ForestGenConfig::ValueDist::kUniform
                            : ForestGenConfig::ValueDist::kDepthDecay;
    const Forest f = random_forest(config, rng);
    for (const std::size_t k : {1u, 2u, 4u}) {
      const TmResult r = tm_optimal_bas(f, k);
      const double bound =
          log_k1(k, static_cast<double>(f.size()));
      EXPECT_GE(r.value * bound, f.total_value() * (1 - 1e-12))
          << "k=" << k << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem39, ::testing::Values(9, 19, 29));


// ---- per-node degree bounds (the generalized DP) -------------------------

TEST(TmPerNode, UniformBoundsMatchScalarOverload) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    ForestGenConfig config;
    config.nodes = 1 + static_cast<std::size_t>(rng.uniform_int(1, 200));
    config.max_degree = 6;
    const Forest f = random_forest(config, rng);
    for (const std::size_t k : {1u, 2u, 4u}) {
      const std::vector<std::size_t> uniform(f.size(), k);
      EXPECT_DOUBLE_EQ(tm_optimal_bas(f, uniform).value,
                       tm_optimal_bas(f, k).value);
    }
  }
}

TEST(TmPerNode, MatchesBruteForceWithMixedBounds) {
  Rng rng(56);
  for (int trial = 0; trial < 25; ++trial) {
    ForestGenConfig config;
    config.nodes = 1 + static_cast<std::size_t>(rng.uniform_int(1, 11));
    config.max_degree = 4;
    config.root_probability = 0.2;
    const Forest f = random_forest(config, rng);
    std::vector<std::size_t> bounds(f.size());
    for (auto& b : bounds) {
      b = static_cast<std::size_t>(rng.uniform_int(0, 3));
    }
    const TmResult tm = tm_optimal_bas(f, bounds);
    const auto check = validate_bas(f, tm.selection, bounds);
    ASSERT_TRUE(check) << check.error;
    const SubForest brute = brute_force_bas(f, bounds);
    EXPECT_NEAR(tm.value, brute.value(f), 1e-9) << "trial " << trial;
  }
}

TEST(TmPerNode, ZeroBudgetNodesKeepNoChildren) {
  // Root budget 0: it may be retained but all children are pruned-down.
  Forest f;
  f.add(100);
  f.add(10, 0);
  f.add(10, 0);
  const std::vector<std::size_t> bounds{0, 2, 2};
  const TmResult r = tm_optimal_bas(f, bounds);
  EXPECT_DOUBLE_EQ(r.value, 100.0);  // 100 beats pruning up for 20
  EXPECT_TRUE(r.selection.kept(0));
  EXPECT_FALSE(r.selection.kept(1));
}

// The forked entry point fans root trees out across threads; root subtrees
// are disjoint, so it must be bit-identical to the serial DP — value,
// per-node t/m tables, and the keep mask — whether forking is forced on for
// every multi-root forest (threshold 1) or disabled outright (0).
TEST(Tm, ForkedMatchesSerialBitExactOnRandomForests) {
  Rng rng(424242);
  const ForestGenConfig::ValueDist dists[] = {
      ForestGenConfig::ValueDist::kUniform,
      ForestGenConfig::ValueDist::kHeavyTail,
      ForestGenConfig::ValueDist::kDepthDecay};
  for (int trial = 0; trial < 9; ++trial) {
    ForestGenConfig config;
    config.nodes = 150 + static_cast<std::size_t>(trial) * 80;
    config.max_degree = 6;
    config.root_probability = 0.05;  // plenty of roots to fork over
    config.value_dist = dists[trial % 3];
    const Forest f = random_forest(config, rng);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
      const TmResult serial = tm_optimal_bas(f, k);
      TmScratch scratch;
      TmResult forked;
      tm_optimal_bas_forked(f, k, scratch, forked, /*fork_min_nodes=*/1);
      EXPECT_EQ(serial.value, forked.value) << "trial " << trial;
      EXPECT_EQ(serial.t, forked.t) << "trial " << trial;
      EXPECT_EQ(serial.m, forked.m) << "trial " << trial;
      EXPECT_EQ(serial.selection.keep, forked.selection.keep)
          << "trial " << trial;

      // fork_min_nodes = 0 disables forking; same scratch, same answer.
      TmResult disabled;
      tm_optimal_bas_forked(f, k, scratch, disabled, /*fork_min_nodes=*/0);
      EXPECT_EQ(serial.value, disabled.value) << "trial " << trial;
      EXPECT_EQ(serial.selection.keep, disabled.selection.keep)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace pobp
