// Unit tests for src/util: rng, checked arithmetic, rational, stats,
// parallel_for, table.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "pobp/util/checked.hpp"
#include "pobp/util/parallel.hpp"
#include "pobp/util/rational.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/stats.hpp"
#include "pobp/util/table.hpp"

namespace pobp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(11);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child1(), child2());
}

TEST(Checked, AddSubMulBasics) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_sub(2, 3), -1);
  EXPECT_EQ(checked_mul(-4, 3), -12);
}

TEST(Checked, PowBasics) {
  EXPECT_EQ(checked_pow(2, 10), 1024);
  EXPECT_EQ(checked_pow(12, 0), 1);
  EXPECT_EQ(checked_pow(1, 60), 1);
}

TEST(Checked, PowFitsInt64) {
  EXPECT_TRUE(pow_fits_int64(2, 62));
  EXPECT_FALSE(pow_fits_int64(2, 64));
  EXPECT_TRUE(pow_fits_int64(12, 17));
  EXPECT_FALSE(pow_fits_int64(12, 18));
}

TEST(Checked, ExactDiv) {
  EXPECT_EQ(exact_div(12, 4), 3);
  EXPECT_EQ(exact_div(-12, 4), -3);
}

TEST(Checked, FloorLog) {
  EXPECT_EQ(floor_log(2, 1), 0);
  EXPECT_EQ(floor_log(2, 2), 1);
  EXPECT_EQ(floor_log(2, 3), 1);
  EXPECT_EQ(floor_log(2, 1024), 10);
  EXPECT_EQ(floor_log(3, 80), 3);
  EXPECT_EQ(floor_log(3, 81), 4);
}

TEST(CheckedDeath, AddOverflowAborts) {
  EXPECT_DEATH(checked_add(INT64_MAX, 1), "overflow");
}

TEST(CheckedDeath, MulOverflowAborts) {
  EXPECT_DEATH(checked_mul(INT64_MAX / 2, 3), "overflow");
}

TEST(CheckedDeath, ExactDivNonDivisible) {
  EXPECT_DEATH(exact_div(7, 2), "not divisible");
}

TEST(Rational, NormalizesToLowestTerms) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NegativeDenominatorNormalized) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_EQ(Rational(4, 2), Rational(2));
  EXPECT_LE(Rational(-1, 2), Rational(0));
}

TEST(Rational, ToInt) {
  EXPECT_EQ(Rational(8, 2).to_int(), 4);
  EXPECT_TRUE(Rational(8, 2).is_integer());
  EXPECT_FALSE(Rational(7, 2).is_integer());
}

TEST(Rational, PowAndPaperLaxity) {
  // λ = 1 + 1/(3K−1) for K = 2 is 6/5.
  const Rational lambda = Rational(1) + Rational(1, 3 * 2 - 1);
  EXPECT_EQ(lambda, Rational(6, 5));
  EXPECT_EQ(pow(Rational(1, 2), 3), Rational(1, 8));
}

TEST(Rational, CrossReducedMultiplicationAvoidsOverflow) {
  // (a/b)·(b/a) with large a, b would overflow without cross-reduction.
  const std::int64_t big = 3'000'000'000LL;
  EXPECT_EQ(Rational(big, 7) * Rational(7, big), Rational(1));
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Rng rng(13);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-10, 10);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Percentile, ExactValues) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.5);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  std::atomic<int> count{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitIdleDrainsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { done++; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({Table::fmt(std::int64_t{42}), Table::fmt(3.14159, 2), "x"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t("demo", {"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace pobp
