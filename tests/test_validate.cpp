// Unit tests for the feasibility validator (Def. 2.1) — every failure mode.
#include <gtest/gtest.h>

#include "pobp/schedule/schedule.hpp"
#include "pobp/schedule/validate.hpp"

namespace pobp {
namespace {

JobSet two_jobs() {
  JobSet jobs;
  jobs.add({0, 10, 4, 1.0});   // job 0
  jobs.add({2, 20, 6, 2.0});   // job 1
  return jobs;
}

TEST(Validate, AcceptsFeasibleSingleMachine) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {8, 10}}});
  ms.add({1, {{2, 8}}});
  EXPECT_TRUE(validate_machine(jobs, ms));
}

TEST(Validate, AcceptsEmptySchedule) {
  const JobSet jobs = two_jobs();
  EXPECT_TRUE(validate_machine(jobs, MachineSchedule{}));
}

TEST(Validate, RejectsSegmentBeforeRelease) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({1, {{1, 7}}});  // release is 2
  const auto r = validate_machine(jobs, ms);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("outside the job window"), std::string::npos);
}

TEST(Validate, RejectsSegmentAfterDeadline) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{7, 11}}});  // deadline is 10
  EXPECT_FALSE(validate_machine(jobs, ms));
}

TEST(Validate, RejectsWrongTotalLength) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 3}}});  // p = 4 but scheduled 3
  const auto r = validate_machine(jobs, ms);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("expected 4"), std::string::npos);
}

TEST(Validate, RejectsCrossJobOverlap) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 4}}});
  ms.add({1, {{3, 9}}});
  const auto r = validate_machine(jobs, ms);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("machine conflict"), std::string::npos);
}

TEST(Validate, RejectsPreemptionBudgetViolation) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {5, 6}, {9, 10}}});  // 2 preemptions
  EXPECT_TRUE(validate_machine(jobs, ms, 2));
  const auto r = validate_machine(jobs, ms, 1);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("exceed the bound"), std::string::npos);
}

TEST(Validate, KZeroMeansOneSegment) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 4}}});
  EXPECT_TRUE(validate_machine(jobs, ms, 0));
  MachineSchedule ms2;
  ms2.add({0, {{0, 2}, {8, 10}}});
  EXPECT_FALSE(validate_machine(jobs, ms2, 0));
}

TEST(Validate, RejectsUnknownJobId) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({7, {{0, 4}}});
  EXPECT_FALSE(validate_machine(jobs, ms));
}

TEST(Validate, AdjacentSegmentsOfDifferentJobsAreFine) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 4}}});
  ms.add({1, {{4, 10}}});
  EXPECT_TRUE(validate_machine(jobs, ms));
}

TEST(ValidateMulti, AcceptsDisjointMachines) {
  const JobSet jobs = two_jobs();
  Schedule s(2);
  s.machine(0).add({0, {{0, 4}}});
  s.machine(1).add({1, {{2, 8}}});
  EXPECT_TRUE(validate(jobs, s));
  EXPECT_DOUBLE_EQ(s.total_value(jobs), 3.0);
  EXPECT_EQ(s.job_count(), 2u);
}

TEST(ValidateMulti, RejectsMigration) {
  JobSet jobs;
  jobs.add({0, 10, 2, 1.0});
  Schedule s(2);
  s.machine(0).add({0, {{0, 2}}});
  s.machine(1).add({0, {{4, 6}}});
  const auto r = validate(jobs, s);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("more than one machine"), std::string::npos);
}

TEST(ValidateMulti, ReportsFailingMachineIndex) {
  const JobSet jobs = two_jobs();
  Schedule s(2);
  s.machine(1).add({0, {{0, 3}}});  // wrong length
  const auto r = validate(jobs, s);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("machine 1"), std::string::npos);
}

TEST(Schedule, MachineOfAndScheduledJobs) {
  const JobSet jobs = two_jobs();
  Schedule s(2);
  s.machine(1).add({1, {{2, 8}}});
  EXPECT_EQ(s.machine_of(1).value(), 1u);
  EXPECT_FALSE(s.machine_of(0).has_value());
  EXPECT_EQ(s.scheduled_jobs().size(), 1u);
}

TEST(MachineSchedule, NormalizesSegmentsOnAdd) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{2, 4}, {0, 2}}});  // unsorted but adjacent: merged
  const Assignment* a = ms.find(0);
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->segments.size(), 1u);
  EXPECT_EQ(a->segments[0], (Segment{0, 4}));
  EXPECT_EQ(a->preemptions(), 0u);
  EXPECT_TRUE(validate_machine(jobs, ms, 0));
}

TEST(MachineSchedule, DuplicateJobThrowsInternalError) {
  MachineSchedule ms;
  ms.add({0, {{0, 2}}});
  EXPECT_THROW(ms.add({0, {{4, 6}}}), InternalError);
}

TEST(MachineSchedule, TimelineSortedByBegin) {
  MachineSchedule ms;
  ms.add({0, {{8, 10}}});
  ms.add({1, {{0, 2}}});
  const auto tl = ms.timeline();
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].job, 1u);
  EXPECT_EQ(tl[1].job, 0u);
  EXPECT_EQ(ms.busy_time(), 4);
}

}  // namespace
}  // namespace pobp
