// bench_compare — the perf-regression gate (tools/ci_check.sh perf stage).
//
//   bench_compare [--tol FRAC] [--require-cores N] [--warn-time]
//                 baseline.json current.json
//
// Reads two benchmark result files and fails (exit 1) when the current run
// regresses against the checked-in baseline:
//
//   * ns/op (or real_time): current > baseline * (1 + FRAC) — wall-clock
//     comparisons are machine-sensitive, so the tolerance defaults to 15%
//     (the ISSUE's regression budget) and is configurable;
//   * allocs/op: current > baseline — allocation counts are deterministic
//     and machine-independent, so they are gated strictly.  This is the
//     enforcement half of the zero-allocation hot-path contract;
//   * ops/s: current < baseline * (1 - FRAC) — throughput metrics gate in
//     the opposite direction (higher is better), same tolerance;
//   * value: free-form indicators (e.g. scaling_efficiency_w8) are printed
//     for trend-watching but never gated — the producing bench binary owns
//     any policy on them (bench_engine_throughput --gate-scaling).
//
// Two input formats are auto-detected per file:
//   * the custom bench JSON written by bench_common.hpp's JsonWriter
//     ({"metrics": [{"name", "ns_per_op", "allocs_per_op"}]}), and
//   * google-benchmark --benchmark_out JSON ({"benchmarks": [{"name",
//     "real_time", "time_unit", "allocs_op", ...}]}); aggregate and
//     complexity-fit entries (_BigO, _RMS, _mean, ...) are skipped.
//
// Metrics present in the baseline but missing from the current run fail the
// gate (a silently dropped metric is a dropped guarantee); metrics only in
// the current run are reported as new and pass.
//
// The header line reports the core count the baseline was recorded on
// (bench_common's top-level "cores", or google-benchmark's
// context.num_cpus) next to the runner's own, so a stale or mismatched
// baseline is visible in every log; when the two differ a dedicated
// "CORES MISMATCH" line calls it out explicitly (non-fatal — the
// tolerance / --warn-time policy still owns pass/fail).  Rows named XScalarRef are paired with
// row X and the current run's ns/op ratio is printed as the measured
// kernel speedup (informational).
//
// --require-cores N declares the core count the baseline's scaling metrics
// were measured at.  On a runner with fewer cores, every metric whose name
// contains "scaling" is excluded with an explicit SKIP line — including the
// missing-metric check — instead of being compared against numbers the
// hardware cannot reproduce.  The skip is loud by design: an
// under-provisioned runner must say so in its log, not silently pass a
// weaker gate (docs/PERF.md).
//
// --warn-time demotes the wall-clock gates (ns/op, ops/s) from FAIL to an
// explicit WARN line that does not affect the exit code; the allocation
// and missing-metric gates stay fatal.  For runners (shared single-core
// VMs) whose clock-speed drift exceeds any sane tolerance — ci_check.sh
// enables it automatically below 8 cores, where an identical binary has
// been observed to swing > 50% between runs (docs/PERF.md).
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// --- minimal JSON -----------------------------------------------------------

struct JValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  std::optional<JValue> parse() {
    JValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JValue::Type::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JValue& out) {
    out.type = JValue::Type::kObject;
    if (!consume('{')) return false;
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JValue& out) {
    out.type = JValue::Type::kArray;
    if (!consume('[')) return false;
    if (consume(']')) return true;
    for (;;) {
      JValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':  // keep the raw escape; names never need code points
            out += "\\u";
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_number(JValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = JValue::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- metric extraction ------------------------------------------------------

struct Sample {
  double ns_per_op = -1;    // < 0 = absent
  double allocs_per_op = -1;
  double ops_per_s = -1;    // throughput: higher is better
  double value = -1;        // informational (e.g. scaling efficiency)
};

double to_ns(double value, const std::string& unit) {
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return value;  // ns (google-benchmark's default)
}

bool is_aggregate(const JValue& entry, const std::string& name) {
  if (const JValue* rt = entry.find("run_type")) {
    if (rt->string != "iteration") return true;
  }
  return name.find("_BigO") != std::string::npos ||
         name.find("_RMS") != std::string::npos ||
         name.find("_mean") != std::string::npos ||
         name.find("_median") != std::string::npos ||
         name.find("_stddev") != std::string::npos ||
         name.find("_cv") != std::string::npos;
}

struct LoadResult {
  std::map<std::string, Sample> samples;
  int recorded_cores = -1;  ///< core count the file was produced on; -1 if
                            ///< the producing binary predates the field
};

std::optional<LoadResult> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_compare: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto root = JsonParser(buffer.str()).parse();
  if (!root || root->type != JValue::Type::kObject) {
    std::cerr << "bench_compare: " << path << ": not a JSON object\n";
    return std::nullopt;
  }

  LoadResult result;
  // bench_common JsonWriter records "cores" at the top level;
  // google-benchmark records context.num_cpus.
  if (const JValue* cores = root->find("cores")) {
    result.recorded_cores = static_cast<int>(cores->number);
  } else if (const JValue* ctx = root->find("context")) {
    if (const JValue* cpus = ctx->find("num_cpus")) {
      result.recorded_cores = static_cast<int>(cpus->number);
    }
  }
  std::map<std::string, Sample>& out = result.samples;
  if (const JValue* metrics = root->find("metrics")) {
    // bench_common.hpp JsonWriter format.
    for (const JValue& m : metrics->array) {
      const JValue* name = m.find("name");
      if (name == nullptr) continue;
      Sample s;
      if (const JValue* v = m.find("ns_per_op")) s.ns_per_op = v->number;
      if (const JValue* v = m.find("allocs_per_op")) {
        s.allocs_per_op = v->number;
      }
      if (const JValue* v = m.find("ops_per_s")) s.ops_per_s = v->number;
      if (const JValue* v = m.find("value")) s.value = v->number;
      out[name->string] = s;
    }
    return result;
  }
  if (const JValue* benchmarks = root->find("benchmarks")) {
    // google-benchmark --benchmark_out format.
    for (const JValue& b : benchmarks->array) {
      const JValue* name = b.find("name");
      if (name == nullptr || is_aggregate(b, name->string)) continue;
      Sample s;
      if (const JValue* v = b.find("real_time")) {
        const JValue* unit = b.find("time_unit");
        s.ns_per_op = to_ns(v->number, unit ? unit->string : "ns");
      }
      if (const JValue* v = b.find("allocs_op")) s.allocs_per_op = v->number;
      out[name->string] = s;
    }
    return result;
  }
  std::cerr << "bench_compare: " << path
            << ": neither \"metrics\" nor \"benchmarks\" found\n";
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.15;
  std::size_t require_cores = 0;
  bool warn_time = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else if (arg == "--require-cores" && i + 1 < argc) {
      require_cores =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--warn-time") {
      warn_time = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_compare [--tol FRAC] [--require-cores N] "
                 "[--warn-time] baseline.json current.json\n";
    return 2;
  }

  const std::size_t cores = std::thread::hardware_concurrency();
  const bool skip_scaling = require_cores > 0 && cores < require_cores;
  const auto is_scaling = [](const std::string& name) {
    return name.find("scaling") != std::string::npos;
  };

  const auto baseline_file = load(paths[0]);
  const auto current_file = load(paths[1]);
  if (!baseline_file || !current_file) return 2;
  const std::map<std::string, Sample>* baseline = &baseline_file->samples;
  const std::map<std::string, Sample>* current = &current_file->samples;

  // A wall-clock baseline is only as meaningful as the machine it was
  // recorded on — lead with the recorded core count so a mismatch with the
  // runner is visible in every CI log (docs/PERF.md baseline-refresh
  // procedure).
  std::cout << "bench_compare: baseline " << paths[0] << " recorded on ";
  if (baseline_file->recorded_cores > 0) {
    std::cout << baseline_file->recorded_cores << " core(s)";
  } else {
    std::cout << "an unrecorded core count";
  }
  std::cout << "; runner has " << cores << "\n";
  if (baseline_file->recorded_cores > 0 &&
      static_cast<std::size_t>(baseline_file->recorded_cores) != cores) {
    // Loud but non-fatal: wall-clock numbers recorded on different
    // hardware still gate (with the tolerance / --warn-time policy), but
    // every log must say the comparison crosses machines
    // (docs/PERF.md baseline-refresh procedure).
    std::cout << "CORES MISMATCH: baseline recorded on "
              << baseline_file->recorded_cores << " core(s), runner has "
              << cores << " — wall-clock comparisons cross machines; "
              << "consider refreshing the baseline (docs/PERF.md)\n";
  }

  int regressions = 0;
  for (const auto& [name, base] : *baseline) {
    if (skip_scaling && is_scaling(name)) {
      std::cout << "SKIP " << name << ": scaling gate requires >= "
                << require_cores << " cores, runner has " << cores << "\n";
      continue;
    }
    const auto it = current->find(name);
    if (it == current->end()) {
      std::cerr << "FAIL " << name << ": present in baseline, missing from "
                << "current run\n";
      ++regressions;
      continue;
    }
    const Sample& cur = it->second;
    if (base.ns_per_op >= 0 && cur.ns_per_op >= 0) {
      const double limit = base.ns_per_op * (1.0 + tol);
      const bool bad = cur.ns_per_op > limit;
      std::cout << (bad ? (warn_time ? "WARN " : "FAIL ") : "ok   ") << name
                << ": " << cur.ns_per_op << " ns/op vs baseline "
                << base.ns_per_op << " (limit " << limit
                << (bad && warn_time ? "; wall-clock demoted to warning" : "")
                << ")\n";
      if (bad && !warn_time) ++regressions;
    }
    if (base.allocs_per_op >= 0 && cur.allocs_per_op >= 0) {
      const bool bad = cur.allocs_per_op > base.allocs_per_op + 1e-9;
      std::cout << (bad ? "FAIL " : "ok   ") << name << ": "
                << cur.allocs_per_op << " allocs/op vs baseline "
                << base.allocs_per_op << " (strict)\n";
      if (bad) ++regressions;
    }
    if (base.ops_per_s >= 0 && cur.ops_per_s >= 0) {
      // Throughput: higher is better, so the regression edge is the
      // mirror image of the ns/op gate.
      const double limit = base.ops_per_s * (1.0 - tol);
      const bool bad = cur.ops_per_s < limit;
      std::cout << (bad ? (warn_time ? "WARN " : "FAIL ") : "ok   ") << name
                << ": " << cur.ops_per_s << " ops/s vs baseline "
                << base.ops_per_s << " (limit " << limit
                << (bad && warn_time ? "; wall-clock demoted to warning" : "")
                << ")\n";
      if (bad && !warn_time) ++regressions;
    }
    if (base.value >= 0 && cur.value >= 0) {
      // Machine-sensitive indicators (scaling efficiency): reported for
      // trend-watching, never gated here — the bench binary's own
      // --gate-scaling flag owns that policy.
      std::cout << "info " << name << ": " << cur.value << " vs baseline "
                << base.value << " (not gated)\n";
    }
  }
  for (const auto& [name, cur] : *current) {
    if (skip_scaling && is_scaling(name)) continue;
    if (baseline->find(name) == baseline->end()) {
      std::cout << "new  " << name << " (no baseline, not gated)\n";
    }
  }

  // Kernel speedup report: a row named XScalarRef/... is a bench-local
  // copy of the pre-vectorization implementation of X/... on the same
  // input, so the ratio of the *current* run's pair is the measured
  // speedup on this runner (informational — the ns/op gates above own
  // pass/fail).
  for (const auto& [name, cur] : *current) {
    const std::size_t tag = name.find("ScalarRef");
    if (tag == std::string::npos || cur.ns_per_op <= 0) continue;
    const std::string partner = name.substr(0, tag) + name.substr(tag + 9);
    const auto it = current->find(partner);
    if (it == current->end() || it->second.ns_per_op <= 0) continue;
    std::cout << "info " << partner << ": " << cur.ns_per_op / it->second.ns_per_op
              << "x vs scalar reference (" << it->second.ns_per_op << " vs "
              << cur.ns_per_op << " ns/op)\n";
  }

  if (regressions > 0) {
    std::cerr << regressions << " perf regression(s) vs " << paths[0] << "\n";
    return 1;
  }
  std::cout << "bench_compare: no regressions vs " << paths[0] << "\n";
  return 0;
}
