#!/usr/bin/env bash
# CI gate: warning-clean Release build, sanitizer builds, full ctest under
# each, the gating pobp_srclint static stage, clang-format / clang-tidy
# (when installed), and a pobp_lint smoke run on the known-bad fixtures.
#
#   tools/ci_check.sh [--skip-tsan] [--skip-tidy] [--skip-perf]
#                     [--skip-format] [--skip-soak] [--soak-seconds N]
#                     [--lenient-scaling]
#
# Presets come from CMakePresets.json; build trees land in
# build-<preset>/.  The script is self-gating: sanitizers, clang-format or
# clang-tidy that the toolchain lacks are reported and skipped, everything
# else is fatal (set -e).  The static stage has no toolchain dependency
# (pobp_srclint is built by the tree itself) and always gates.
#
# --lenient-scaling demotes the perf stage's w8-vs-w1 scaling floor to a
# warning (allocation and wall-clock gates stay fatal).  Runners with
# fewer than 8 cores get lenient mode automatically — announced in the
# log, and bench_compare is told via --require-cores 8 so its scaling
# rows are skipped with explicit SKIP lines rather than silently passing
# a weaker gate (see docs/PERF.md).
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_TIDY=0
SKIP_PERF=0
SKIP_FORMAT=0
SKIP_SOAK=0
SOAK_SECONDS=0
LENIENT_SCALING=0
expect_soak_seconds=0
for arg in "$@"; do
  if [ "$expect_soak_seconds" -eq 1 ]; then
    SOAK_SECONDS="$arg"
    expect_soak_seconds=0
    continue
  fi
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-format) SKIP_FORMAT=1 ;;
    --skip-soak) SKIP_SOAK=1 ;;
    --soak-seconds) expect_soak_seconds=1 ;;
    --soak-seconds=*) SOAK_SECONDS="${arg#--soak-seconds=}" ;;
    --lenient-scaling) LENIENT_SCALING=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done
if [ "$expect_soak_seconds" -eq 1 ]; then
  echo "--soak-seconds needs a value" >&2; exit 2
fi
if [ "$(nproc)" -lt 8 ] && [ "$LENIENT_SCALING" -eq 0 ]; then
  echo "ci_check: runner has $(nproc) cores (< 8): w8 scaling floor demoted" \
       "to a warning; bench_compare will SKIP scaling rows and demote" \
       "wall-clock rows to WARN (docs/PERF.md)"
  LENIENT_SCALING=1
fi

say() { printf '\n=== %s ===\n' "$*"; }

# True iff the active C++ compiler can link the given -fsanitize= flag.
sanitizer_available() {
  local flag="$1"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  echo 'int main() { return 0; }' > "$tmp/probe.cpp"
  "${CXX:-c++}" "-fsanitize=$flag" "$tmp/probe.cpp" -o "$tmp/probe" \
    > /dev/null 2>&1
}

run_preset() {
  local preset="$1"
  say "configure + build: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  say "ctest: $preset"
  ctest --preset "$preset"
}

# 1. Warning-clean build (-Werror -Wconversion -Wshadow) + full tests.
run_preset werror

# 2. Release build + tests (the tier-1 configuration).
run_preset release

# 2b. Perf-regression gate (see docs/PERF.md): run the engine throughput
#     bench and the pooled-stage google-benchmark subset in Release, write
#     BENCH_engine.json / BENCH_runtime.json, and diff them against the
#     checked-in baselines with bench_compare.  Time regresses at > 15%
#     (bench_compare's default tolerance); allocs/op regress strictly —
#     that is the zero-allocation hot-path contract.  The throughput bench
#     additionally enforces absolute floors of the work-stealing engine:
#     ≤ 8 steady-state allocs/solve (strict everywhere), w8 ≥ 3× w1
#     throughput (a warning under lenient scaling — see the flag docs
#     above), and the solve-cache floors (warm-cache ≥ 5× cache-off on a
#     50%-duplicate stream, 0 allocs/op on the hit path — docs/CACHE.md).
#     Refresh baselines with tools/refresh_bench_baselines.sh after an
#     intentional change.
if [ "$SKIP_PERF" -eq 0 ]; then
  say "perf smoke (bench_compare vs bench/baselines)"
  SCALING_FLAGS=()
  if [ "$LENIENT_SCALING" -eq 1 ]; then
    SCALING_FLAGS+=(--lenient-scaling)
  fi
  # Wall-clock tolerance for this stage.  bench_compare defaults to 15%,
  # but here the benches run seconds after two full build+ctest stages, so
  # a loaded single-core runner shows >20% swing on the microsecond-scale
  # metrics.  25% keeps the gate meaningful for real regressions without
  # tripping on scheduler noise; the allocation gates stay strict and the
  # absolute alloc/scaling floors above are unaffected.  On the lenient
  # (< 8 core) runners even 25% is not enough — an identical binary has
  # been measured > 50% slower across runs on a shared single-core VM —
  # so there the wall-clock rows are demoted to explicit WARN lines
  # (--warn-time) and only the deterministic allocation and
  # missing-metric gates stay fatal (docs/PERF.md).
  PERF_TOL=0.25
  COMPARE_FLAGS=(--tol "$PERF_TOL" --require-cores 8)
  if [ "$LENIENT_SCALING" -eq 1 ]; then
    COMPARE_FLAGS+=(--warn-time)
  fi
  # --dup-rate adds the solve-cache experiment (docs/CACHE.md) and its two
  # absolute floors: the warm-cache pass of a 50%-duplicate stream must be
  # >= 5x faster than cache-off, and the warm-hit path must stay at 0
  # allocs/op (the O(1) copy-out contract).  Both are machine-independent
  # enough to gate everywhere: the speedup is a ratio measured on one
  # runner, the allocation count is deterministic.
  build-release/bench/bench_engine_throughput --instances 32 --repeats 2 \
      --json build-release/BENCH_engine.json \
      --gate-allocs 8 --gate-scaling 3 "${SCALING_FLAGS[@]}" \
      --dup-rate 0.5 --gate-cache-speedup 5 --gate-hit-allocs 0
  build-release/bench/bench_runtime \
      --benchmark_filter="$(cat bench/baselines/runtime_filter.txt)" \
      --benchmark_out=build-release/BENCH_runtime.json \
      --benchmark_out_format=json > /dev/null
  build-release/tools/bench_compare "${COMPARE_FLAGS[@]}" \
      bench/baselines/BENCH_engine.json build-release/BENCH_engine.json
  build-release/tools/bench_compare "${COMPARE_FLAGS[@]}" \
      bench/baselines/BENCH_runtime.json build-release/BENCH_runtime.json
else
  say "perf smoke: skipped"
fi

# 2c. Gating static stage: the tree's own source analyzer (POBP-SRC-*
#     rules, docs/LINT.md) over every lintable file.  The base preset
#     exports compile_commands.json, so the pass covers exactly what the
#     build compiles plus the headers found by the directory walk.  Any
#     finding is fatal; suppress at a site with `// POBP-SRC-nnn: reason`.
say "static (pobp_srclint)"
build-release/tools/pobp_srclint --root . \
    --compile-commands build-release/compile_commands.json \
    src tools bench examples

# 3. Sanitizers.  The asan-ubsan preset also compiles the pobp::fault
#    injection sites in (POBP_FAULT_INJECTION=ON), so its ctest run covers
#    the EngineFaults suite live; re-run that subset explicitly afterwards
#    as the fault-injection smoke.
if sanitizer_available address; then
  run_preset asan-ubsan
  say "fault-injection smoke (asan-ubsan, EngineFaults.*)"
  build-asan-ubsan/tests/test_engine --gtest_filter='EngineFaults.*'
else
  say "asan-ubsan: sanitizer runtime unavailable, skipped"
fi
if [ "$SKIP_TSAN" -eq 0 ] && sanitizer_available thread; then
  run_preset tsan
else
  say "tsan: skipped"
fi

# 4. clang-format over the tracked sources (uses .clang-format).
#    --dry-run -Werror makes any mis-formatted file fatal.
if [ "$SKIP_FORMAT" -eq 0 ] && command -v clang-format > /dev/null 2>&1; then
  say "clang-format (--dry-run -Werror)"
  git ls-files 'src/*.cpp' 'src/*.hpp' 'tools/*.cpp' 'bench/*.cpp' \
               'examples/*.cpp' 'tests/*.cpp' \
    | xargs clang-format --dry-run -Werror
else
  say "clang-format: unavailable or skipped"
fi

# 5. clang-tidy over the library and tools (uses .clang-tidy; the preset
#    already exported compile_commands.json).  bugprone-* and
#    clang-analyzer-* findings are errors (WarningsAsErrors), so this
#    stage gates when the tool is installed.
if [ "$SKIP_TIDY" -eq 0 ] && command -v clang-tidy > /dev/null 2>&1; then
  say "clang-tidy"
  git ls-files 'src/*.cpp' 'tools/*.cpp' \
    | xargs clang-tidy -p build-release --quiet
else
  say "clang-tidy: unavailable or skipped"
fi

# 6. pobp_lint smoke: the known-bad fixtures must produce error findings
#    (exit 1), a clean artifact must lint clean (exit 0).
say "pobp_lint smoke"
LINT=build-release/tools/pobp_lint
set +e
"$LINT" --jobs tests/data/bad_jobs.csv --schedule tests/data/bad_schedule.csv \
        --k 1 --forest tests/data/bad_forest.csv \
        --selection tests/data/bad_selection.csv
lint_status=$?
set -e
if [ "$lint_status" -ne 1 ]; then
  echo "FAIL: pobp_lint exit $lint_status on bad fixtures (want 1)" >&2
  exit 1
fi
"$LINT" --check-gen --gen-k 1 --gen-K 2 --gen-L 4

# 7. Engine smoke: the throughput bench's determinism check (bit-identical
#    schedules across worker counts) in smoke size, then `pobp batch`
#    end-to-end on a 3-instance manifest — every result must validate and
#    the metrics JSON must be written.
say "engine smoke"
POBP=build-release/tools/pobp
build-release/bench/bench_engine_throughput --smoke
ENGINE_TMP="$(mktemp -d)"
trap 'rm -rf "$ENGINE_TMP"' EXIT
for seed in 31 32 33; do
  "$POBP" generate --out "$ENGINE_TMP/inst$seed.csv" --n 20 --seed "$seed"
  echo "inst$seed.csv" >> "$ENGINE_TMP/manifest.txt"
done
mkdir -p "$ENGINE_TMP/out"
"$POBP" batch --manifest "$ENGINE_TMP/manifest.txt" --k 1 --workers 2 \
        --out-dir "$ENGINE_TMP/out" --metrics-json "$ENGINE_TMP/metrics.json"
test -s "$ENGINE_TMP/metrics.json"
for seed in 31 32 33; do
  "$POBP" validate --jobs "$ENGINE_TMP/inst$seed.csv" \
          --schedule "$ENGINE_TMP/out/inst$seed.sched.csv" --k 1
done

# 8. Fault-containment smoke: a manifest with one good, one corrupt and one
#    missing instance must still solve the good one under --on-error=skip
#    (exit 0) and must fail with the parse exit code (4) under
#    --on-error=fail.
say "batch fault-containment smoke"
"$POBP" batch --manifest tests/data/malformed_manifest.txt --k 1 --quiet \
        --on-error=skip
set +e
"$POBP" batch --manifest tests/data/malformed_manifest.txt --k 1 --quiet \
        --on-error=fail
batch_status=$?
set -e
if [ "$batch_status" -ne 4 ]; then
  echo "FAIL: batch --on-error=fail exit $batch_status on corrupt manifest" \
       "(want 4)" >&2
  exit 1
fi

# 9. Serve smoke: pipe the 100-request JSONL fixture through `pobp serve`
#    on stdin and diff against the checked-in golden frames — parse errors
#    and POBP-RUN-003 budget rejections ride in-band as error frames (exit
#    stays 0).  Run twice (1 and 2 workers) to pin the byte-identical
#    replay contract of docs/SERVING.md in CI.
say "serve smoke (golden replay, workers 1 vs 2)"
"$POBP" serve --workers 1 --quiet < tests/data/serve/requests.jsonl \
        > "$ENGINE_TMP/serve_w1.jsonl"
"$POBP" serve --workers 2 --quiet < tests/data/serve/requests.jsonl \
        > "$ENGINE_TMP/serve_w2.jsonl"
diff -u tests/data/serve/golden_responses.jsonl "$ENGINE_TMP/serve_w1.jsonl"
diff -u "$ENGINE_TMP/serve_w1.jsonl" "$ENGINE_TMP/serve_w2.jsonl"

# 9b. Resilient replay: the same fixture with every resilience knob armed
#     (retry + breaker + watchdog + a generous rate limit) must stay
#     byte-identical to the plain golden frames — the determinism contract
#     of docs/ROBUSTNESS.md — across worker counts.
say "serve smoke (resilient replay, workers 1 vs 8)"
RESILIENT_FLAGS=(--retry 3 --retry-backoff-ms 0.1 --retry-degrade
                 --tenant-rate 1000000 --tenant-burst 1000000
                 --breaker 5 --breaker-cooldown-ms 10 --watchdog-ms 20)
"$POBP" serve --workers 1 --quiet "${RESILIENT_FLAGS[@]}" \
        < tests/data/serve/requests.jsonl > "$ENGINE_TMP/serve_r1.jsonl"
"$POBP" serve --workers 8 --quiet "${RESILIENT_FLAGS[@]}" \
        < tests/data/serve/requests.jsonl > "$ENGINE_TMP/serve_r8.jsonl"
diff -u tests/data/serve/golden_responses.jsonl "$ENGINE_TMP/serve_r1.jsonl"
diff -u "$ENGINE_TMP/serve_r1.jsonl" "$ENGINE_TMP/serve_r8.jsonl"

# 10. Differential chaos soak (docs/ROBUSTNESS.md): a long-running serve
#     loop under fault injection on all five pipeline sites plus
#     IoFuzz-mutated wire frames, with every answer checked against the
#     validators / price bounds and a brute-force k-BAS oracle on small
#     instances.  Prefers the asan-ubsan tree — it compiles the fault
#     sites in (POBP_FAULT_INJECTION=ON) *and* memory-checks the soak —
#     and falls back to the release binary (faults compiled out, the
#     differential checks still gate) when sanitizers are unavailable.
#     Default is a 10k-request smoke; --soak-seconds N trades requests
#     for wall-clock (the nightly knob), --skip-soak drops the stage.
#     On a mismatch `pobp chaos` exits 1 and writes a minimized repro
#     under the --repro-dir printed in the failure line.
if [ "$SKIP_SOAK" -eq 0 ]; then
  CHAOS_POBP="$POBP"
  if [ -x build-asan-ubsan/tools/pobp ]; then
    CHAOS_POBP=build-asan-ubsan/tools/pobp
  fi
  if [ "$SOAK_SECONDS" -gt 0 ]; then
    say "chaos soak ($CHAOS_POBP, ${SOAK_SECONDS}s)"
    SOAK_FLAGS=(--seconds "$SOAK_SECONDS")
  else
    say "chaos soak ($CHAOS_POBP, 10000 requests)"
    SOAK_FLAGS=(--requests 10000)
  fi
  "$CHAOS_POBP" chaos "${SOAK_FLAGS[@]}" --seed 20260808 \
      --repro-dir "$ENGINE_TMP/chaos_repro"
else
  say "chaos soak: skipped"
fi

say "all checks passed"
