// pobp — command-line front end.
//
//   pobp generate --n 200 --seed 7 --out jobs.csv [...]
//   pobp solve    --jobs jobs.csv --k 1 [--machines 2] [--out sched.csv]
//                 [--gantt] [--exact]
//   pobp batch    --manifest list.txt | --jsonl stream.jsonl --k 1
//                 [--workers 8] [--out-dir DIR] [--metrics-json FILE]
//   pobp serve    [--jsonl stream.jsonl] [--k 1] [--workers 8] [...]
//   pobp validate --jobs jobs.csv --schedule sched.csv [--k 1]
//   pobp price    --jobs jobs.csv --k 1 [--machines 2] [--exact]
//   pobp info     --jobs jobs.csv
//
// Exit codes (documented in docs/CLI.md):
//   0  success (for validate: the schedule is feasible)
//   1  infeasible schedule / validation failure / other runtime failure
//   2  usage error (unknown command, bad flag, bad flag value)
//   3  a referenced file cannot be opened
//   4  malformed input data (CSV / manifest / JSONL parse failure)
//   5  solve options rejected (POBP-OPT-*)
//   6  contained solve fault (POBP-RUN-*: pipeline fault, deadline, budget)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/srclint/driver.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/io/forest_csv.hpp"
#include "pobp/io/fuzz.hpp"
#include "pobp/io/manifest.hpp"
#include "pobp/io/wire.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/pobp.hpp"
#include "pobp/sim/policies.hpp"
#include "pobp/sim/sim.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace {

using namespace pobp;

enum ExitCode : int {
  kExitOk = 0,
  kExitInfeasible = 1,
  kExitUsage = 2,
  kExitFileOpen = 3,
  kExitParse = 4,
  kExitOptions = 5,
  kExitSolveFault = 6,
};

/// Maps a rule-tagged report onto the exit-code table above (first
/// error-severity finding decides).
int exit_for(const diag::Report& report) {
  for (const diag::Diagnostic& d : report.diagnostics()) {
    if (d.severity != diag::Severity::kError) continue;
    if (d.rule.rfind("POBP-RUN-", 0) == 0) return kExitSolveFault;
    if (d.rule.rfind("POBP-OPT-", 0) == 0) return kExitOptions;
    if (d.rule.rfind("POBP-IO-", 0) == 0) {
      return d.message.rfind("cannot open", 0) == 0 ? kExitFileOpen
                                                    : kExitParse;
    }
  }
  return kExitInfeasible;
}

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: pobp <command> [flags]

commands:
  generate   write a random workload as jobs CSV
             --out FILE [--n N] [--seed S] [--min-length L] [--max-length L]
             [--min-laxity X] [--max-laxity X] [--horizon T]
             [--values uniform|proportional|density]
  solve      schedule a workload with bounded preemption
             --jobs FILE --k K [--machines M] [--out FILE] [--gantt]
             [--exact]            (exact B&B seed; n <= ~26)
  batch      solve many instances in parallel on a pobp::Engine
             (--manifest FILE | --jsonl FILE) [--k K] [--machines M]
             [--workers W] [--exact] [--out-dir DIR] [--quiet]
             [--metrics-json FILE]  (FILE '-' = stdout)
             solve cache (docs/CACHE.md):
             [--cache off|read|read_write] [--cache-bytes N]
             [--delta-max-jobs N]
             fault containment:
             [--deadline-ms MS] [--max-ops N] [--degrade] [--max-retries R]
             [--on-error skip|report|fail]   (default: report)
             [--fault-inject SPEC]  (site[@instance]:nth, testing builds)
  serve      long-lived streaming service: JSONL requests in (file or
             stdin), one response frame per request in submission order
             (wire format and semantics: docs/SERVING.md)
             [--jsonl FILE]   (default '-' = stdin)
             [--k K] [--machines M] [--workers W] [--exact]
             [--queue N] [--max-batch N]          (pump shape)
             [--deadline-ms MS] [--max-ops N] [--degrade]  (defaults)
             [--shed] [--tenant-quota N] [--overload-degrade]
             solve cache (docs/CACHE.md):
             [--cache off|read|read_write] [--cache-bytes N]
             [--delta-max-jobs N]
             resilience (docs/ROBUSTNESS.md):
             [--retry N] [--retry-backoff-ms MS] [--retry-degrade]
             [--tenant-rate R] [--tenant-burst B]
             [--breaker N] [--breaker-cooldown-ms MS] [--watchdog-ms MS]
             [--max-line-bytes N]   (0 = unlimited; default 1 MiB)
             [--metrics-json FILE] [--tenant-stats] [--stats FILE]
             [--quiet]
  chaos      differential chaos soak: fuzzed wire requests + fault
             injection against a resilient serve stack; mismatches are
             minimized into a repro fixture (docs/ROBUSTNESS.md)
             [--seconds S] [--requests N] [--seed S] [--workers W]
             [--mutate-rate P] [--oracle-n N] [--fault-inject SPEC|none]
             [--repro-dir DIR] [--quiet]
  validate   check a schedule against a workload (Def. 2.1)
             --jobs FILE --schedule FILE [--k K]
  price      report the empirical price of bounded preemption
             --jobs FILE --k K [--machines M] [--exact]
  info       print instance metrics (n, P, rho, sigma, lambda_max)
             --jobs FILE
  bench      run the microbenchmark suite (launches the bench_runtime
             binary built next to this executable)
             [--kernels]   (SoA/SIMD kernel rows + scalar-reference twins)
             [--filter REGEX] [--min-time SECONDS] [--out FILE]  (json)
  bas        optimal k-BAS of a value forest (Procedure TM, §3.2)
             --forest FILE --k K [--heuristic]   (LevelledContraction too)
  sim        run an online policy with context-switch costs
             --jobs FILE --policy edf|nonpreemptive|budget|srpt|laxity
             [--k K] [--alpha A] [--cost C] [--gantt]
  lint-src   source-level static analysis (POBP-SRC-* rules; the full
             interface lives in the standalone pobp_srclint tool)
             [paths...] [--root DIR] [--format text|json]
)");
  std::exit(kExitUsage);
}

/// --flag value parser; accepts both `--key value` and `--key=value`;
/// boolean flags have empty values.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected argument " + key).c_str());
      key = key.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string str(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      if (fallback.empty()) usage(("missing --" + key).c_str());
      return fallback;
    }
    return it->second;
  }

  std::int64_t num(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_generate(const Flags& flags) {
  JobGenConfig config;
  config.n = static_cast<std::size_t>(flags.num("n", 100));
  config.min_length = flags.num("min-length", 1);
  config.max_length = flags.num("max-length", 1024);
  config.min_laxity = flags.real("min-laxity", 1.0);
  config.max_laxity = flags.real("max-laxity", 6.0);
  config.horizon = flags.num("horizon", 16 * config.max_length);
  const std::string mode = flags.str("values", "uniform");
  if (mode == "proportional") {
    config.value_mode = JobGenConfig::ValueMode::kProportional;
  } else if (mode == "density") {
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  } else if (mode != "uniform") {
    usage("unknown --values mode");
  }
  Rng rng(static_cast<std::uint64_t>(flags.num("seed", 1)));
  const JobSet jobs = random_jobs(config, rng);
  io::save_jobs(flags.str("out"), jobs);
  std::printf("wrote %zu jobs: %s\n", jobs.size(),
              compute_metrics(jobs).to_string().c_str());
  return 0;
}

int cmd_solve(const Flags& flags) {
  const JobSet jobs = io::load_jobs(flags.str("jobs"));
  ScheduleOptions options;
  options.k = static_cast<std::size_t>(flags.num("k", 1));
  options.machine_count = static_cast<std::size_t>(flags.num("machines", 1));
  if (flags.has("exact")) options.seed = ScheduleOptions::Seed::kExact;

  const Expected<ScheduleResult, diag::Report> outcome =
      try_schedule_bounded(jobs, options);
  if (!outcome) {
    std::fputs(diag::to_text(outcome.error()).c_str(), stderr);
    return exit_for(outcome.error());
  }
  const ScheduleResult& result = *outcome;
  const ValidationResult check = validate(jobs, result.schedule, options.k);
  if (!check) {
    std::fprintf(stderr, "internal error: %s\n", check.error.c_str());
    return kExitInfeasible;
  }
  std::printf("scheduled %zu/%zu jobs, value %.6g of %.6g (price %.3f), "
              "max preemptions %zu (k=%zu)\n",
              result.schedule.job_count(), jobs.size(), result.value,
              result.unbounded_value, result.price(),
              result.schedule.max_preemptions(), options.k);
  if (flags.has("gantt")) {
    std::printf("%s", render_gantt(jobs, result.schedule).c_str());
  }
  if (flags.has("report")) {
    std::printf("%s", make_report(jobs, result.schedule).to_string().c_str());
  }
  if (flags.has("out")) {
    io::save_schedule(flags.str("out"), result.schedule);
    std::printf("schedule written to %s\n", flags.str("out").c_str());
  }
  return 0;
}

/// --cache read|read_write arms an engine-wide content-addressed solve
/// cache (docs/CACHE.md); --cache-bytes and --delta-max-jobs tune its byte
/// budget and the near-duplicate patch distance.  "off" (or omitting the
/// flag) leaves the engine uncached.  Returns the cache so the caller can
/// surface POBP-RUN-008 pressure at the end of the run.
std::shared_ptr<SolveCache> configure_cache(const Flags& flags,
                                            EngineOptions& engine) {
  if (!flags.has("cache")) return nullptr;
  const std::string mode = flags.str("cache");
  if (mode == "off") return nullptr;
  if (mode != "read" && mode != "read_write") {
    usage("--cache wants off, read or read_write");
  }
  SolveCacheOptions options;
  options.max_bytes = static_cast<std::size_t>(flags.num(
      "cache-bytes", static_cast<std::int64_t>(options.max_bytes)));
  options.delta_max_jobs = static_cast<std::size_t>(flags.num(
      "delta-max-jobs", static_cast<std::int64_t>(options.delta_max_jobs)));
  auto cache = std::make_shared<SolveCache>(options);
  engine.cache = cache;
  engine.cache_mode =
      mode == "read" ? CacheMode::kRead : CacheMode::kReadWrite;
  return cache;
}

/// Surfaces the POBP-RUN-008 cache-pressure finding (if any) on stderr —
/// a thrashing cache means --cache-bytes is too small for the stream's
/// working set (docs/CACHE.md, "Eviction tuning").
void report_cache_pressure(const SolveCache* cache) {
  if (cache == nullptr) return;
  const diag::Report report = cache->check_pressure();
  if (!report.diagnostics().empty()) {
    std::fputs(diag::to_text(report).c_str(), stderr);
  }
}

int cmd_batch(const Flags& flags) {
  const std::string on_error = flags.str("on-error", "report");
  if (on_error != "skip" && on_error != "report" && on_error != "fail") {
    usage("--on-error wants skip, report or fail");
  }

  // Fault-contained load: a corrupt instance is a per-instance report, not
  // a batch abort.  Only the batch container itself failing to open is
  // immediately fatal.
  std::vector<io::InstanceOutcome> loaded;
  if (flags.has("manifest")) {
    auto batch = io::try_load_manifest(flags.str("manifest"));
    if (!batch) {
      std::fputs(diag::to_text(batch.error()).c_str(), stderr);
      return exit_for(batch.error());
    }
    loaded = std::move(batch).value();
  } else if (flags.has("jsonl")) {
    auto batch = io::try_load_jsonl(flags.str("jsonl"));
    if (!batch) {
      std::fputs(diag::to_text(batch.error()).c_str(), stderr);
      return exit_for(batch.error());
    }
    loaded = std::move(batch).value();
  } else {
    usage("batch needs --manifest or --jsonl");
  }
  if (loaded.empty()) {
    std::fprintf(stderr, "error: empty instance list\n");
    return kExitParse;
  }

  int failure_exit = kExitOk;  // first failure decides the exit code
  std::size_t load_failures = 0;
  for (const io::InstanceOutcome& instance : loaded) {
    if (instance.jobs.has_value()) continue;
    ++load_failures;
    std::fprintf(stderr, "error: instance '%s' rejected:\n%s",
                 instance.name.c_str(),
                 diag::to_text(instance.jobs.error()).c_str());
    if (on_error == "fail") return exit_for(instance.jobs.error());
    if (failure_exit == kExitOk) {
      failure_exit = exit_for(instance.jobs.error());
    }
  }

  EngineOptions options;
  options.schedule.k = static_cast<std::size_t>(flags.num("k", 1));
  options.schedule.machine_count =
      static_cast<std::size_t>(flags.num("machines", 1));
  if (flags.has("exact")) {
    options.schedule.seed = ScheduleOptions::Seed::kExact;
  }
  options.workers = static_cast<std::size_t>(flags.num("workers", 0));
  options.budget.deadline_s = flags.real("deadline-ms", 0.0) / 1000.0;
  options.budget.max_ops =
      static_cast<std::uint64_t>(flags.num("max-ops", 0));
  if (flags.has("degrade")) options.degrade = DegradePolicy::kApproximate;
  options.max_retries = static_cast<std::size_t>(flags.num("max-retries", 0));
  if (flags.has("fault-inject")) {
    options.fault_injection = flags.str("fault-inject");
  }
  const std::shared_ptr<SolveCache> cache = configure_cache(flags, options);
  Engine engine(options);

  // Batch indices (and fault-injection `@instance` triggers) refer to
  // positions among the *loadable* instances.
  std::vector<JobSet> sets;
  std::vector<std::size_t> origin;  // sets index → loaded index
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    if (!loaded[i].jobs.has_value()) continue;
    sets.push_back(*loaded[i].jobs);
    origin.push_back(i);
  }

  const bool quiet = flags.has("quiet");
  const std::vector<SolveOutcome> results = engine.try_solve_batch(sets, {});
  std::size_t solve_failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string& name = loaded[origin[i]].name;
    if (!results[i].has_value()) {
      ++solve_failures;
      std::fprintf(stderr, "error: instance '%s' failed:\n%s", name.c_str(),
                   diag::to_text(results[i].error()).c_str());
      if (on_error == "fail") return exit_for(results[i].error());
      if (failure_exit == kExitOk) {
        failure_exit = exit_for(results[i].error());
      }
      continue;
    }
    const ScheduleResult& r = *results[i];
    if (!quiet) {
      std::printf("%-20s %4zu/%4zu jobs  value %10.6g of %10.6g  price %.3f"
                  "  max preemptions %zu%s\n",
                  name.c_str(), r.schedule.job_count(), sets[i].size(),
                  r.value, r.unbounded_value, r.price(),
                  r.schedule.max_preemptions(),
                  r.degraded ? "  [degraded]" : "");
    }
    if (flags.has("out-dir")) {
      std::string name_safe = name;
      for (char& c : name_safe) {
        if (c == '/') c = '_';
      }
      io::save_schedule(flags.str("out-dir") + "/" + name_safe + ".sched.csv",
                        r.schedule);
    }
  }

  const EngineMetrics metrics = engine.metrics();
  if (!quiet) {
    std::printf("\n%s", metrics.to_table().c_str());
  }
  if (flags.has("metrics-json")) {
    const std::string target = flags.str("metrics-json");
    if (target == "-") {
      std::printf("%s\n", metrics.to_json().c_str());
    } else {
      std::ofstream out(target);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n", target.c_str());
        return kExitFileOpen;
      }
      out << metrics.to_json() << '\n';
    }
  }
  report_cache_pressure(cache.get());

  if (load_failures + solve_failures > 0) {
    std::fprintf(stderr,
                 "batch: %zu/%zu instance(s) solved (%zu load failure(s), "
                 "%zu solve failure(s))\n",
                 results.size() - solve_failures, loaded.size(),
                 load_failures, solve_failures);
  }
  if (on_error == "skip") {
    // Defects were reported above but do not affect the exit code.
    return metrics.validation_failures == 0 ? kExitOk : kExitInfeasible;
  }
  if (failure_exit != kExitOk) return failure_exit;
  return metrics.validation_failures == 0 ? kExitOk : kExitInfeasible;
}

/// `pobp serve` — the streaming front end (docs/SERVING.md).  Reads JSONL
/// requests from a file or stdin, pushes them through a pobp::StreamEngine,
/// and emits exactly one response frame per request, in submission order.
/// Per-request failures (parse, budget, deadline, admission) are in-band
/// error frames, never a process exit: the stream always runs to the end.
int cmd_serve(const Flags& flags) {
  StreamOptions stream;
  stream.engine.schedule.k = static_cast<std::size_t>(flags.num("k", 1));
  stream.engine.schedule.machine_count =
      static_cast<std::size_t>(flags.num("machines", 1));
  if (flags.has("exact")) {
    stream.engine.schedule.seed = ScheduleOptions::Seed::kExact;
  }
  stream.engine.workers = static_cast<std::size_t>(flags.num("workers", 0));
  stream.engine.budget.deadline_s = flags.real("deadline-ms", 0.0) / 1000.0;
  stream.engine.budget.max_ops =
      static_cast<std::uint64_t>(flags.num("max-ops", 0));
  if (flags.has("degrade")) {
    stream.engine.degrade = DegradePolicy::kApproximate;
  }
  if (flags.has("fault-inject")) {
    stream.engine.fault_injection = flags.str("fault-inject");
  }
  const std::shared_ptr<SolveCache> cache =
      configure_cache(flags, stream.engine);
  stream.queue_capacity = static_cast<std::size_t>(flags.num("queue", 1024));
  stream.max_batch = static_cast<std::size_t>(flags.num("max-batch", 64));
  stream.tenant_max_in_flight =
      static_cast<std::size_t>(flags.num("tenant-quota", 0));
  if (flags.has("overload-degrade")) {
    stream.overload_degrade = DegradePolicy::kApproximate;
  }
  // Resilience knobs (docs/ROBUSTNESS.md).  All off by default; with
  // faults disarmed none of them changes an answer, so replayed streams
  // stay byte-identical even when they are enabled.
  stream.engine.retry.max_attempts =
      static_cast<std::size_t>(flags.num("retry", 1));
  stream.engine.retry.base_backoff_s =
      flags.real("retry-backoff-ms", 0.5) / 1000.0;
  stream.engine.retry.degrade_final_attempt = flags.has("retry-degrade");
  stream.tenant_rate.tokens_per_s = flags.real("tenant-rate", 0.0);
  stream.tenant_rate.burst = flags.real("tenant-burst", 1.0);
  stream.breaker.failure_threshold =
      static_cast<std::size_t>(flags.num("breaker", 0));
  stream.breaker.cooldown_s = flags.real("breaker-cooldown-ms", 1000.0) / 1000.0;
  stream.watchdog.poll_interval_s = flags.real("watchdog-ms", 0.0) / 1000.0;
  const std::size_t max_line_bytes = static_cast<std::size_t>(
      flags.num("max-line-bytes",
                static_cast<std::int64_t>(io::kDefaultMaxLineBytes)));
  // Shedding and the overload tier are timing-dependent (queue occupancy);
  // the default blocking submit keeps replayed streams byte-identical.
  const bool shed = flags.has("shed");

  const std::string source = flags.str("jsonl", "-");
  std::ifstream file;
  std::istream* in = &std::cin;
  if (source != "-") {
    file.open(source);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", source.c_str());
      return kExitFileOpen;
    }
    in = &file;
  }

  StreamEngine engine(stream);

  // Response frames leave in submission order: each request parks here
  // until everything ahead of it has been printed.  `frame` is pre-rendered
  // for requests that never reach the engine (parse failures).
  struct Pending {
    std::string frame;
    std::optional<std::future<SolveOutcome>> outcome;
    std::string id;
    bool want_schedule = false;
  };
  std::deque<Pending> pending;
  std::size_t served = 0;
  std::size_t errors = 0;

  const auto flush_front = [&] {
    Pending p = std::move(pending.front());
    pending.pop_front();
    if (p.outcome) {
      const SolveOutcome outcome = p.outcome->get();
      if (outcome.has_value()) {
        const ScheduleResult& r = *outcome;
        io::ResponseStats stats;
        stats.value = r.value;
        stats.unbounded_value = r.unbounded_value;
        stats.price = r.price();
        stats.degraded = r.degraded;
        stats.jobs_scheduled = r.schedule.job_count();
        p.frame = io::response_frame(p.id, stats,
                                     p.want_schedule ? &r.schedule : nullptr);
      } else {
        p.frame = io::error_frame(p.id, outcome.error());
        ++errors;
      }
    }
    std::fputs(p.frame.c_str(), stdout);
    std::fputc('\n', stdout);
    ++served;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto parsed = io::try_parse_serve_request(line, line_no, max_line_bytes);
    if (!parsed) {
      ++errors;
      Pending p;
      p.frame = io::error_frame("line" + std::to_string(line_no),
                                parsed.error());
      pending.push_back(std::move(p));
    } else {
      io::ServeRequest request = std::move(*parsed);
      ScheduleOptions schedule = stream.engine.schedule;
      if (request.k) schedule.k = *request.k;
      if (request.machines) schedule.machine_count = *request.machines;
      SubmitOptions submit;
      submit.tenant = std::move(request.tenant);
      if (request.deadline_ms > 0) {
        submit.deadline_s = request.deadline_ms / 1000.0;
      }
      if (request.max_ops > 0) {
        SolveBudget budget = stream.engine.budget;
        budget.max_ops = request.max_ops;
        submit.budget = budget;
      }
      if (request.degrade) {
        submit.degrade = *request.degrade ? DegradePolicy::kApproximate
                                          : DegradePolicy::kNone;
      }
      if (!request.cache.empty()) {
        submit.cache = request.cache == "off"  ? CacheMode::kOff
                       : request.cache == "read" ? CacheMode::kRead
                                                 : CacheMode::kReadWrite;
      }
      Pending p;
      p.id = std::move(request.id);
      p.want_schedule = request.want_schedule;
      p.outcome = shed ? engine.try_submit(std::move(request.jobs), schedule,
                                           std::move(submit))
                       : engine.submit(std::move(request.jobs), schedule,
                                       std::move(submit));
      pending.push_back(std::move(p));
    }
    // Bound the parked-futures window so a long stream never accumulates
    // unbounded response state.
    while (pending.size() > stream.queue_capacity * 2) flush_front();
  }
  while (!pending.empty()) flush_front();
  std::fflush(stdout);

  engine.drain();
  if (flags.has("metrics-json")) {
    const EngineMetrics metrics = engine.metrics();
    const std::string target = flags.str("metrics-json");
    if (target == "-") {
      std::printf("%s\n", metrics.to_json().c_str());
    } else {
      std::ofstream out(target);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n", target.c_str());
        return kExitFileOpen;
      }
      out << metrics.to_json() << '\n';
    }
  }
  if (flags.has("tenant-stats")) {
    for (const auto& [tenant, stats] : engine.tenant_stats()) {
      std::fprintf(stderr,
                   "tenant %-16s submitted %llu completed %llu failed %llu "
                   "quota-rejected %llu shed %llu degraded %llu "
                   "cache-hits %llu "
                   "rate-rejected %llu breaker-rejected %llu (%s) "
                   "p50 %.3fms p99 %.3fms\n",
                   tenant.c_str(),
                   static_cast<unsigned long long>(stats.submitted),
                   static_cast<unsigned long long>(stats.completed),
                   static_cast<unsigned long long>(stats.failed),
                   static_cast<unsigned long long>(stats.rejected_quota),
                   static_cast<unsigned long long>(stats.shed),
                   static_cast<unsigned long long>(stats.degraded),
                   static_cast<unsigned long long>(stats.cache_hits),
                   static_cast<unsigned long long>(stats.rejected_rate),
                   static_cast<unsigned long long>(stats.rejected_breaker),
                   std::string(to_string(stats.breaker_state)).c_str(),
                   stats.latency.p50_ms, stats.latency.p99_ms);
    }
  }
  if (flags.has("stats")) {
    // The health + per-tenant latency/resilience snapshot as one JSON
    // document ('-' or empty = stdout; frames are already flushed).
    std::string target = flags.str("stats", "-");
    if (target.empty()) target = "-";
    const std::string stats = engine.stats_json();
    if (target == "-") {
      std::printf("%s\n", stats.c_str());
    } else {
      std::ofstream out(target);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n", target.c_str());
        return kExitFileOpen;
      }
      out << stats << '\n';
    }
  }
  report_cache_pressure(cache.get());
  if (!flags.has("quiet")) {
    std::fprintf(stderr, "serve: %zu response frame(s), %zu error frame(s)\n",
                 served, errors);
  }
  return kExitOk;
}

/// `pobp chaos` — the differential chaos-soak harness (docs/ROBUSTNESS.md).
/// Generates adversarial workloads, renders them as wire frames, mutates a
/// fraction of the frames with the shared io fuzzer, and pushes everything
/// through a fully resilient StreamEngine (retry + breaker + watchdog +
/// overload degrade) under fault injection on all five pipeline sites.
/// Every answer is differentially checked: the Def. 2.1 validator, the
/// price bounds (value <= unbounded <= total), and — for small unmutated
/// instances — the exact k-slot oracle.  On a mismatch the instance is
/// greedily minimized and written out as a repro fixture; exit 1 names it.
/// Exit 0 = the soak ran clean.
int cmd_chaos(const Flags& flags) {
  Rng rng(static_cast<std::uint64_t>(flags.num("seed", 1)));
  const double seconds = flags.real("seconds", 5.0);
  const std::size_t min_requests =
      static_cast<std::size_t>(flags.num("requests", 0));
  const double mutate_rate = flags.real("mutate-rate", 0.25);
  const std::size_t oracle_n =
      static_cast<std::size_t>(flags.num("oracle-n", 7));
  const std::string repro_dir = flags.str("repro-dir", "chaos_repro");
  const bool quiet = flags.has("quiet");

  StreamOptions stream;
  stream.engine.workers = static_cast<std::size_t>(flags.num("workers", 0));
  // The full resilience stack, tuned aggressive so every mechanism
  // exercises: short backoffs, a touchy breaker, a fast watchdog.
  stream.engine.retry.max_attempts =
      static_cast<std::size_t>(flags.num("retry", 3));
  stream.engine.retry.base_backoff_s = 0.0001;
  stream.engine.retry.max_backoff_s = 0.002;
  stream.engine.retry.degrade_final_attempt = true;
  stream.breaker.failure_threshold = 8;
  stream.breaker.cooldown_s = 0.02;
  stream.breaker.half_open_probes = 2;
  stream.watchdog.poll_interval_s = 0.05;
  stream.watchdog.stall_s = 0.5;
  stream.overload_degrade = DegradePolicy::kApproximate;
  stream.queue_capacity = static_cast<std::size_t>(flags.num("queue", 256));
  // Transient faults on every pipeline site (any-instance nth triggers:
  // each fires once per request whose site call count reaches it, and the
  // retry deterministically recovers).  No-ops when the build compiles
  // fault injection out.
  const std::string fault =
      flags.str("fault-inject", "alloc:23,laminarize:7,tm_dp:11,left_merge:5,"
                                "validate:3");
  if (fault != "none") stream.engine.fault_injection = fault;

  StreamEngine engine(stream);

  // This thread is the checker, not the system under test: its own
  // validate() / oracle / minimizer calls share fault-instrumented
  // routines with the pipeline and must not trip the armed triggers.
  // Suppression is thread-local — the engine's pump and worker threads
  // still fault on schedule.
  const fault::SuppressScope checker_shield;

  struct Check {
    std::future<SolveOutcome> outcome;
    JobSet jobs;
    std::size_t k = 1;
    std::optional<Value> oracle;  ///< exact cap, small unmutated instances
  };
  std::deque<Check> window;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t error_frames = 0;
  std::size_t degraded_answers = 0;
  std::size_t wire_rejects = 0;
  std::size_t mutated_lines = 0;
  std::size_t mismatches = 0;
  std::string first_reason;
  JobSet bad_jobs;
  std::size_t bad_k = 1;

  // The differential predicate.  Empty string = the answer is consistent.
  const auto inconsistent = [&](const JobSet& jobs, std::size_t k,
                                const ScheduleResult& r,
                                const std::optional<Value>& oracle)
      -> std::string {
    const ValidationResult v = validate(jobs, r.schedule, k);
    if (!v) return "validator: " + v.error;
    if (r.value > jobs.total_value() + 1e-6) {
      return "value exceeds the instance total";
    }
    // Price >= 1 needs k >= 1: the bounded schedule then draws from the
    // seed's job set.  The k = 0 §5 algorithm re-selects from *all* jobs
    // and can legitimately beat a heuristic seed (test_combined.cpp).
    if (!r.degraded && k >= 1 && r.value > r.unbounded_value + 1e-6) {
      return "bounded value exceeds the unbounded value (price < 1)";
    }
    if (oracle && r.value > *oracle + 1e-6) {
      return "value exceeds the exact k-slot oracle";
    }
    return "";
  };

  const auto check_front = [&] {
    Check c = std::move(window.front());
    window.pop_front();
    const SolveOutcome outcome = c.outcome.get();
    ++completed;
    if (!outcome.has_value()) {
      ++error_frames;
      if (outcome.error().rule_ids().empty() && mismatches++ == 0) {
        first_reason = "error outcome without a rule id";
        bad_jobs = c.jobs;
        bad_k = c.k;
      }
      return;
    }
    const ScheduleResult& r = *outcome;
    if (r.degraded) ++degraded_answers;
    const std::string why = inconsistent(c.jobs, c.k, r, c.oracle);
    if (!why.empty() && mismatches++ == 0) {
      first_reason = why;
      bad_jobs = c.jobs;
      bad_k = c.k;
    }
  };

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  char buf[64];
  for (std::size_t i = 0;
       (min_requests > 0 && submitted < min_requests) ||
       (min_requests == 0 && elapsed() < seconds);
       ++i) {
    // Adversarial workload shapes: mostly mid-size streams, a steady diet
    // of oracle-checkable small instances, occasional tight-laxity ones.
    JobGenConfig config;
    const bool small = rng.bernoulli(0.3);
    config.n = small ? 3 + static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(oracle_n) - 3))
                     : static_cast<std::size_t>(rng.uniform_int(8, 24));
    config.min_length = 1;
    config.max_length = small ? 6 : 32;
    config.min_laxity = 1.0;
    config.max_laxity = rng.bernoulli(0.3) ? 1.5 : 5.0;
    config.horizon = small ? 32 : 512;
    config.value_mode = rng.bernoulli(0.5)
                            ? JobGenConfig::ValueMode::kRandomDensity
                            : JobGenConfig::ValueMode::kUniform;
    const JobSet jobs = random_jobs(config, rng);
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(0, 2));

    // Render the wire frame the way a client would.
    std::string line = "{\"id\":\"c" + std::to_string(i) + "\",\"tenant\":\"t" +
                       std::to_string(i % 4) + "\",\"k\":" + std::to_string(k) +
                       ",\"jobs\":[";
    bool comma = false;
    for (const Job& j : jobs) {
      if (comma) line += ',';
      comma = true;
      std::snprintf(buf, sizeof(buf), "[%lld,%lld,%lld,%.17g]",
                    static_cast<long long>(j.release),
                    static_cast<long long>(j.deadline),
                    static_cast<long long>(j.length), j.value);
      line += buf;
    }
    line += ']';
    if (rng.bernoulli(0.15)) line += ",\"max_ops\":5000";
    if (rng.bernoulli(0.1)) line += ",\"degrade\":true";
    line += '}';

    const bool mutated = rng.bernoulli(mutate_rate);
    if (mutated) {
      ++mutated_lines;
      line = io::fuzz_mutate_line(std::move(line), rng);
    }

    // The wire boundary: parse failures are in-band rejections, never
    // crashes — and for mutated lines that still parse, the checks below
    // run on exactly what was parsed.
    auto parsed = io::try_parse_serve_request(line, i + 1);
    if (!parsed.has_value()) {
      ++wire_rejects;
      if (parsed.error().rule_ids().empty() && mismatches++ == 0) {
        first_reason = "wire rejection without a rule id";
        bad_jobs = jobs;
        bad_k = k;
      }
      continue;
    }
    io::ServeRequest request = std::move(*parsed);
    ScheduleOptions schedule;
    schedule.k = request.k.value_or(1);
    if (request.machines) schedule.machine_count = *request.machines;
    SubmitOptions submit;
    submit.tenant = std::move(request.tenant);
    if (request.max_ops > 0) {
      SolveBudget budget;
      budget.max_ops = request.max_ops;
      submit.budget = budget;
    }
    if (request.degrade) {
      submit.degrade = *request.degrade ? DegradePolicy::kApproximate
                                        : DegradePolicy::kNone;
    }

    Check check;
    check.jobs = request.jobs;  // what the engine will actually solve
    check.k = schedule.k;
    if (!mutated && check.jobs.size() <= oracle_n && check.jobs.size() > 0 &&
        check.k <= 2) {
      check.oracle =
          opt_k_slots(check.jobs, check.k, std::size_t{1} << 24);
    }
    check.outcome = engine.try_submit(std::move(request.jobs), schedule,
                                      std::move(submit));
    ++submitted;
    window.push_back(std::move(check));
    while (window.size() > 128) check_front();
  }
  while (!window.empty()) check_front();
  engine.drain();

  if (mismatches > 0) {
    // Greedy minimization: re-derive the mismatch on the plain synchronous
    // pipeline (no faults, no admission) and drop jobs while it persists;
    // if only the chaos stack reproduces it, the full instance ships.
    const auto plain_reason = [&](const JobSet& jobs) -> std::string {
      ScheduleOptions options;
      options.k = bad_k;
      const auto result = try_schedule_bounded(jobs, options);
      if (!result.has_value()) return "";  // a contained report is an answer
      std::optional<Value> oracle;
      if (jobs.size() <= oracle_n) {
        oracle = opt_k_slots(jobs, bad_k, std::size_t{1} << 24);
      }
      return inconsistent(jobs, bad_k, *result, oracle);
    };
    bool shrunk = true;
    while (shrunk && !plain_reason(bad_jobs).empty() && bad_jobs.size() > 1) {
      shrunk = false;
      for (std::size_t drop = 0; drop < bad_jobs.size(); ++drop) {
        JobSet smaller;
        for (std::size_t j = 0; j < bad_jobs.size(); ++j) {
          if (j != drop) smaller.add(bad_jobs.jobs()[j]);
        }
        if (!plain_reason(smaller).empty()) {
          bad_jobs = std::move(smaller);
          shrunk = true;
          break;
        }
      }
    }
    std::error_code ec;
    std::filesystem::create_directories(repro_dir, ec);
    const std::string jobs_path = repro_dir + "/jobs.csv";
    io::save_jobs(jobs_path, bad_jobs);
    std::ofstream note(repro_dir + "/repro.txt");
    note << "reason: " << first_reason << "\n"
         << "replay: pobp solve --jobs jobs.csv --k " << bad_k << "\n"
         << "chaos seed: " << flags.num("seed", 1) << "\n";
    std::fprintf(stderr,
                 "chaos: MISMATCH after %zu request(s): %s\n"
                 "chaos: repro written to %s (%zu job(s), k=%zu)\n",
                 submitted, first_reason.c_str(), repro_dir.c_str(),
                 bad_jobs.size(), bad_k);
    return kExitInfeasible;
  }
  if (!quiet) {
    std::fprintf(
        stderr,
        "chaos: clean soak — %zu submitted (%zu mutated, %zu wire-rejected), "
        "%zu completed, %zu error frame(s), %zu degraded, %.1fs\n",
        submitted, mutated_lines, wire_rejects, completed, error_frames,
        degraded_answers, elapsed());
    std::fputs(engine.stats_json().c_str(), stderr);
    std::fputc('\n', stderr);
  }
  return kExitOk;
}

int cmd_validate(const Flags& flags) {
  const JobSet jobs = io::load_jobs(flags.str("jobs"));
  const Schedule schedule = io::load_schedule(flags.str("schedule"));
  const std::size_t k = flags.has("k")
                            ? static_cast<std::size_t>(flags.num("k", 0))
                            : kUnboundedPreemptions;
  const ValidationResult check = validate(jobs, schedule, k);
  if (check) {
    std::printf("feasible: %zu jobs, value %.6g, max preemptions %zu\n",
                schedule.job_count(), schedule.total_value(jobs),
                schedule.max_preemptions());
    return 0;
  }
  std::printf("INFEASIBLE: %s\n", check.error.c_str());
  return 1;
}

int cmd_price(const Flags& flags) {
  const JobSet jobs = io::load_jobs(flags.str("jobs"));
  ScheduleOptions options;
  options.k = static_cast<std::size_t>(flags.num("k", 1));
  options.machine_count = static_cast<std::size_t>(flags.num("machines", 1));
  if (flags.has("exact")) options.seed = ScheduleOptions::Seed::kExact;

  const Expected<ScheduleResult, diag::Report> outcome =
      try_schedule_bounded(jobs, options);
  if (!outcome) {
    std::fputs(diag::to_text(outcome.error()).c_str(), stderr);
    return exit_for(outcome.error());
  }
  const ScheduleResult& result = *outcome;
  const InstanceMetrics metrics = compute_metrics(jobs);
  const double n_bound =
      options.k >= 1 ? log_k1(options.k, static_cast<double>(metrics.n))
                     : static_cast<double>(metrics.n);
  const double p_bound = options.k >= 1 ? log_k1(options.k, metrics.P)
                                        : log_base(2.0, metrics.P);
  std::printf("instance: %s\n", metrics.to_string().c_str());
  std::printf("unbounded value: %.6g (%s seed)\n", result.unbounded_value,
              flags.has("exact") ? "exact" : "greedy");
  std::printf("k=%zu value:     %.6g\n", options.k, result.value);
  std::printf("price:          %.4f\n", result.price());
  std::printf("paper bound:    O(log_{k+1} min{n, P}) ~ min{%.2f, %.2f}\n",
              n_bound, p_bound);
  return 0;
}

int cmd_info(const Flags& flags) {
  const JobSet jobs = io::load_jobs(flags.str("jobs"));
  std::printf("%s\n", compute_metrics(jobs).to_string().c_str());
  return 0;
}

/// Thin launcher over the google-benchmark binary built next to this
/// executable (bench/bench_runtime in the same build tree).  `--kernels`
/// narrows to the SoA/SIMD kernel rows and their scalar-reference twins —
/// the pairs docs/PERF.md ("Kernel microbenchmarks") reads speedups from.
int cmd_bench(const Flags& flags) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot locate own executable (%s)\n",
                 ec.message().c_str());
    return kExitFileOpen;
  }
  const fs::path bin =
      self.parent_path().parent_path() / "bench" / "bench_runtime";
  if (!fs::exists(bin)) {
    std::fprintf(stderr,
                 "error: cannot open %s — build the bench_runtime target "
                 "in this tree first\n",
                 bin.c_str());
    return kExitFileOpen;
  }
  std::vector<std::string> args{bin.string()};
  if (flags.has("kernels")) {
    args.push_back(
        "--benchmark_filter=^(BM_TmChildMerge|BM_EdfSweep|BM_LsaClassify|"
        "BM_ValidateFast)(ScalarRef)?/");
  }
  if (flags.has("filter")) {
    args.push_back("--benchmark_filter=" + flags.str("filter"));
  }
  if (flags.has("min-time")) {
    args.push_back("--benchmark_min_time=" + flags.str("min-time"));
  }
  if (flags.has("out")) {
    args.push_back("--benchmark_out=" + flags.str("out"));
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  execv(argv[0], argv.data());  // only returns on failure
  std::fprintf(stderr, "error: cannot exec %s\n", bin.c_str());
  return kExitFileOpen;
}

int cmd_bas(const Flags& flags) {
  const Forest forest = io::load_forest(flags.str("forest"));
  const std::size_t k = static_cast<std::size_t>(flags.num("k", 1));
  const TmResult tm = tm_optimal_bas(forest, k);
  const BasCheck check = validate_bas(forest, tm.selection, k);
  if (!check) {
    std::fprintf(stderr, "internal error: %s\n", check.error.c_str());
    return 1;
  }
  std::printf("forest: %zu nodes, %zu roots, total value %.6g\n",
              forest.size(), forest.roots().size(), forest.total_value());
  std::printf("optimal %zu-BAS: %zu nodes kept, value %.6g (%.2f%% of "
              "total; worst-case guarantee %.2f%%)\n",
              k, tm.selection.kept_count(), tm.value,
              100.0 * tm.value / forest.total_value(),
              100.0 / log_k1(std::max<std::size_t>(k, 1),
                             static_cast<double>(std::max<std::size_t>(
                                 forest.size(), 2))));
  if (flags.has("heuristic")) {
    const ContractionResult lc = levelled_contraction(forest, k);
    std::printf("levelled contraction: value %.6g in %zu iterations "
                "(<= log_{k+1} n = %.2f)\n",
                lc.value, lc.iterations(),
                log_k1(k, static_cast<double>(forest.size())));
  }
  return 0;
}

}  // namespace

int cmd_sim(const Flags& flags) {
  const JobSet jobs = io::load_jobs(flags.str("jobs"));
  const std::string policy_name = flags.str("policy", "edf");
  const std::size_t k = static_cast<std::size_t>(flags.num("k", 1));
  sim::EdfPolicy edf;
  sim::NonPreemptivePolicy np;
  sim::BudgetEdfPolicy budget(k);
  sim::SrptBudgetPolicy srpt(k);
  sim::LaxityThresholdPolicy laxity(k, flags.real("alpha", 1.0));
  sim::Policy* policy = nullptr;
  if (policy_name == "edf") {
    policy = &edf;
  } else if (policy_name == "nonpreemptive") {
    policy = &np;
  } else if (policy_name == "budget") {
    policy = &budget;
  } else if (policy_name == "srpt") {
    policy = &srpt;
  } else if (policy_name == "laxity") {
    policy = &laxity;
  } else {
    usage("unknown --policy (edf | nonpreemptive | budget | srpt | laxity)");
  }
  const sim::SimConfig config{flags.num("cost", 0)};
  const sim::SimResult r = sim::simulate(jobs, *policy, config);
  std::printf("policy %s, dispatch cost %lld:\n", policy->name(),
              static_cast<long long>(config.dispatch_cost));
  std::printf("  completed %zu/%zu jobs, value %.6g of %.6g\n", r.completed,
              jobs.size(), r.value, jobs.total_value());
  std::printf("  dispatches %zu, overhead %lld, wasted work %lld, max "
              "preemptions %zu\n",
              r.dispatches, static_cast<long long>(r.overhead_time),
              static_cast<long long>(r.wasted_time), r.max_preemptions);
  if (flags.has("gantt")) {
    std::printf("%s", render_gantt(jobs, Schedule(r.schedule)).c_str());
  }
  return 0;
}

/// `pobp lint-src [paths...] [--root DIR] [--format text|json]` — the
/// repo-facing face of the srclint pass; the standalone pobp_srclint tool
/// carries the full interface (--rule, --as-path, --compile-commands).
int cmd_lint_src(int argc, char** argv) {
  srclint::DriveRequest request;
  std::string format = "text";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--root") {
      request.root = value();
    } else if (arg == "--format") {
      format = value();
      if (format != "text" && format != "json") {
        usage("unknown --format (text | json)");
      }
    } else if (arg.rfind("--", 0) == 0) {
      usage(("unknown lint-src flag " + arg).c_str());
    } else {
      request.paths.push_back(arg);
    }
  }
  if (request.paths.empty()) {
    // The CI default: the whole first-party tree relative to --root/cwd.
    request.paths = {"src", "tools", "bench", "examples"};
  }
  const diag::Report report = srclint::run_lint(request);
  if (format == "json") {
    std::printf("%s\n", diag::to_sarif(report, "pobp_srclint").c_str());
  } else {
    std::printf("%s", diag::to_text(report).c_str());
  }
  return report.ok() ? kExitOk : kExitInfeasible;
}

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "lint-src") {
    try {
      return cmd_lint_src(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return kExitUsage;
    }
  }
  const Flags flags(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(flags);
    if (command == "solve") return cmd_solve(flags);
    if (command == "batch") return cmd_batch(flags);
    if (command == "serve") return cmd_serve(flags);
    if (command == "chaos") return cmd_chaos(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "price") return cmd_price(flags);
    if (command == "info") return cmd_info(flags);
    if (command == "bench") return cmd_bench(flags);
    if (command == "bas") return cmd_bas(flags);
    if (command == "sim") return cmd_sim(flags);
  } catch (const io::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitParse;
  } catch (const std::invalid_argument& e) {
    // Bad flag values (e.g. a malformed --fault-inject spec).
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    const std::string what = e.what();
    std::fprintf(stderr, "error: %s\n", what.c_str());
    return what.rfind("cannot open", 0) == 0 ? kExitFileOpen
                                             : kExitInfeasible;
  }
  usage(("unknown command " + command).c_str());
}
