// pobp_lint — machine-checkable invariant linter for pobp artifacts.
//
//   pobp_lint --jobs jobs.csv                       # instance rules only
//   pobp_lint --jobs jobs.csv --schedule sched.csv --k 1
//   pobp_lint --forest forest.csv --selection sel.csv --bas-k 1
//   pobp_lint --check-gen --gen-k 1 --gen-K 2 --gen-L 5
//   pobp_lint --list-rules
//
// Runs every registered rule that applies to the given artifacts and
// prints *all* findings (stable rule ids, see docs/LINT.md), as text or
// SARIF-shaped JSON (--format json).  Unlike `pobp validate`, which stops
// at the first violation, the linter is built for CI and debugging: one
// run shows everything wrong with an artifact.
//
// Exit codes: 0 = no error-severity findings (warnings/notes allowed),
//             1 = at least one error finding,
//             2 = usage / IO / parse failure.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pobp/diag/registry.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/forest/bas.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/io/csv.hpp"
#include "pobp/io/forest_csv.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/checked.hpp"

namespace {

using namespace pobp;
namespace rules = diag::rules;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: pobp_lint [artifacts] [flags]

artifacts (any combination; at least one, or --list-rules):
  --jobs FILE            lint a job instance (POBP-JOB-*, POBP-INT-001)
  --schedule FILE        lint a schedule against --jobs
                         (POBP-SCHED-*, POBP-LAM-001); --k K applies the
                         preemption budget (default: unbounded)
  --forest FILE          lint a value forest; with --selection FILE the
                         k-BAS rules run too (POBP-BAS-*); --bas-k K sets
                         the degree bound (default 1)
  --check-gen            check Appendix-B generator parameters
                         --gen-k K --gen-K K --gen-L L (POBP-GEN-*)

flags:
  --k K                  preemption budget for schedule rules
  --bas-k K              degree bound for k-BAS rules (default 1)
  --format text|json     output format (json = SARIF 2.1.0 shaped)
  --list-rules           print the rule catalogue and exit
)");
  std::exit(2);
}

/// --flag value parser; boolean flags have empty values.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    static const char* const kKnown[] = {
        "jobs", "schedule", "forest",   "selection", "check-gen", "k",
        "bas-k", "gen-k",   "gen-K",    "gen-L",     "format",    "list-rules",
    };
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        usage(("unexpected argument " + key).c_str());
      }
      key = key.substr(2);
      if (std::find_if(std::begin(kKnown), std::end(kKnown),
                       [&](const char* k) { return key == k; }) ==
          std::end(kKnown)) {
        usage(("unknown flag --" + key).c_str());
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string str(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      usage(("missing value for --" + key).c_str());
    }
    return it->second;
  }

  std::int64_t num(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      usage(("bad number for --" + key).c_str());
    }
    return value;
  }

 private:
  std::map<std::string, std::string> values_;
};

int list_rules() {
  for (const diag::RuleInfo& rule : diag::all_rules()) {
    std::printf("%-14s %-9s %s (%.*s)\n", std::string(rule.id).c_str(),
                std::string(diag::to_string(rule.default_severity)).c_str(),
                std::string(rule.title).c_str(),
                static_cast<int>(rule.paper_ref.size()),
                rule.paper_ref.data());
  }
  return 0;
}

/// Instance rules: POBP-JOB-001 per malformed job.  Returns the JobSet
/// when every job is well-formed (the schedule rules need one), otherwise
/// nullopt — feasibility of malformed jobs is undefined.
std::optional<JobSet> lint_jobs(const std::vector<Job>& rows,
                                diag::Report& report) {
  bool all_well_formed = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Job& j = rows[i];
    if (j.well_formed()) continue;
    all_well_formed = false;
    diag::Location loc;
    loc.job = static_cast<std::uint32_t>(i);
    loc.begin = j.release;
    loc.end = j.deadline;
    report
        .add(std::string(rules::kJobMalformed),
             "job#" + std::to_string(i) + " is malformed (need p >= 1, "
             "val > 0, window >= p)",
             loc)
        .with("length", j.length)
        .with("window", j.deadline - j.release);
  }
  if (!all_well_formed) return std::nullopt;
  JobSet jobs;
  for (const Job& j : rows) jobs.add(j);
  return jobs;
}

/// Schedule rules over raw CSV rows: Def. 2.1 feasibility (all machines),
/// non-migration, and §4.1 laminarity per machine.
void lint_schedule(const JobSet& jobs,
                   const std::vector<io::ScheduleRow>& rows, std::size_t k,
                   diag::Report& report) {
  const std::vector<std::vector<Assignment>> machines =
      io::group_schedule_rows(rows);
  diagnose_raw_schedule(jobs, machines, k, report);

  // Laminarity is judged on the cleaned segment lists (empties dropped,
  // duplicates merged) so one defect is not double-reported as another.
  for (std::size_t m = 0; m < machines.size(); ++m) {
    MachineSchedule ms;
    for (const Assignment& a : machines[m]) {
      Assignment cleaned{a.job, normalized(a.segments)};
      if (!cleaned.segments.empty()) ms.add(std::move(cleaned));
    }
    diagnose_laminar(ms, report, m);
  }
}

void lint_bas(const Forest& forest, const SubForest& sel, std::size_t bas_k,
              diag::Report& report) {
  diagnose_bas(forest, sel, bas_k, report);
}

/// Appendix-B generator parameter check: domain (k >= 1, K > k) and the
/// int64 tick range of the (K, L) geometric ladder.
void lint_gen(std::int64_t k, std::int64_t K, std::int64_t L,
              diag::Report& report) {
  if (k < 1 || K <= k || L < 0) {
    report
        .add(std::string(rules::kGenParamDomain),
             "Appendix-B construction needs k >= 1, K > k, L >= 0 (got k=" +
                 std::to_string(k) + ", K=" + std::to_string(K) +
                 ", L=" + std::to_string(L) + ")")
        .with("k", k)
        .with("K", K)
        .with("L", L);
    return;
  }
  const std::size_t max_L = pobp_lower_bound_max_L(
      K, std::numeric_limits<std::size_t>::max());
  if (static_cast<std::size_t>(L) > max_L) {
    report
        .add(std::string(rules::kGenOverflow),
             "Appendix-B instance with K=" + std::to_string(K) +
                 ", L=" + std::to_string(L) +
                 " overflows int64 ticks; largest safe L is " +
                 std::to_string(max_L))
        .with("K", K)
        .with("L", L)
        .with("max_L", max_L);
  } else {
    report.add(std::string(rules::kGenOverflow), diag::Severity::kNote,
               "Appendix-B parameters are in range (largest safe L for K=" +
                   std::to_string(K) + " is " + std::to_string(max_L) + ")");
  }
}

int run(const Flags& flags) {
  if (flags.has("list-rules")) return list_rules();

  const bool has_jobs = flags.has("jobs");
  const bool has_schedule = flags.has("schedule");
  const bool has_forest = flags.has("forest");
  const bool has_gen = flags.has("check-gen");
  if (!has_jobs && !has_forest && !has_gen) {
    usage("nothing to lint (need --jobs, --forest, --check-gen or "
          "--list-rules)");
  }
  if (has_schedule && !has_jobs) usage("--schedule requires --jobs");
  if (flags.has("selection") && !has_forest) {
    usage("--selection requires --forest");
  }

  diag::Report report;

  if (has_jobs) {
    const std::vector<Job> rows = io::load_job_rows(flags.str("jobs"));
    const std::optional<JobSet> jobs = lint_jobs(rows, report);
    if (jobs && has_schedule) {
      const std::size_t k =
          flags.has("k") ? static_cast<std::size_t>(flags.num("k", 0))
                         : kUnboundedPreemptions;
      lint_schedule(*jobs, io::load_schedule_rows(flags.str("schedule")), k,
                    report);
    } else if (jobs && !jobs->empty()) {
      // No schedule to judge: report whole-instance overload as a warning
      // (an instance where not every job fits is common, not a defect).
      diagnose_interval_condition(*jobs, all_ids(*jobs), report,
                                  diag::Severity::kWarning);
    } else if (!jobs && has_schedule) {
      std::fprintf(stderr,
                   "note: schedule rules skipped (job instance malformed)\n");
    }
  }

  if (has_forest) {
    const Forest forest = io::load_forest(flags.str("forest"));
    if (flags.has("selection")) {
      const SubForest sel = io::load_selection(flags.str("selection"));
      lint_bas(forest, sel,
               static_cast<std::size_t>(flags.num("bas-k", 1)), report);
    }
  }

  if (has_gen) {
    lint_gen(flags.num("gen-k", 1), flags.num("gen-K", 2),
             flags.num("gen-L", 1), report);
  }

  const std::string format =
      flags.has("format") ? flags.str("format") : "text";
  if (format == "json") {
    std::printf("%s\n", diag::to_sarif(report).c_str());
  } else if (format == "text") {
    std::printf("%s", diag::to_text(report).c_str());
  } else {
    usage("unknown --format (text | json)");
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, 1);
  try {
    return run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
