// pobp_srclint — source-level static analysis for the pobp tree.
//
//   pobp_srclint src tools bench examples            # the CI static stage
//   pobp_srclint --root . --compile-commands build-release/compile_commands.json src
//   pobp_srclint tests/data/srclint/bad_src003.cpp --as-path src/engine/x.cpp
//   pobp_srclint --list-rules
//
// Checks the repository's own sources against the POBP-SRC-* engineering
// rules (allocation discipline, explicit atomic memory orders,
// determinism bans, module layering, containment-boundary hygiene — see
// docs/LINT.md) and prints *all* findings as text or SARIF-shaped JSON.
// A finding is suppressed at a site with `// POBP-SRC-nnn: reason` on the
// same line or the line above.
//
// Exit codes mirror pobp_lint: 0 = no error findings, 1 = at least one,
// 2 = usage / IO failure.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pobp/diag/registry.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/srclint/driver.hpp"

namespace {

using namespace pobp;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: pobp_srclint [paths...] [flags]

paths: source files, or directories walked recursively for
       .cpp/.cc/.hpp/.hh/.h (resolved against --root)

flags:
  --root DIR             repo root for rule scoping (default: cwd); each
                         file is classified by its path relative to DIR
  --compile-commands F   add every "file" entry of a CMake
                         compile_commands.json to the source set
  --as-path PATH         lint a single input file as if it lived at the
                         given repo-relative PATH (fixture testing)
  --rule ID[,ID...]      run only the named POBP-SRC rules
  --format text|json     output format (json = SARIF 2.1.0 shaped)
  --list-rules           print the POBP-SRC rule catalogue and exit
)");
  std::exit(2);
}

int list_rules() {
  for (const diag::RuleInfo& rule : diag::all_rules()) {
    if (rule.id.rfind("POBP-SRC-", 0) != 0) continue;
    std::printf("%-14s %-9s %s (%.*s)\n", std::string(rule.id).c_str(),
                std::string(diag::to_string(rule.default_severity)).c_str(),
                std::string(rule.title).c_str(),
                static_cast<int>(rule.paper_ref.size()),
                rule.paper_ref.data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  srclint::DriveRequest request;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--list-rules") return list_rules();
    if (arg == "--root") {
      request.root = value();
    } else if (arg == "--compile-commands") {
      request.compile_commands = value();
    } else if (arg == "--as-path") {
      request.as_path = value();
    } else if (arg == "--rule") {
      std::string ids = value();
      for (std::size_t pos = 0; pos != std::string::npos;) {
        const std::size_t comma = ids.find(',', pos);
        const std::string id = ids.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!id.empty()) {
          if (diag::find_rule(id) == nullptr ||
              id.rfind("POBP-SRC-", 0) != 0) {
            usage(("unknown source rule " + id).c_str());
          }
          request.options.rules.push_back(id);
        }
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--format") {
      format = value();
      if (format != "text" && format != "json") {
        usage("unknown --format (text | json)");
      }
    } else if (arg.rfind("--", 0) == 0) {
      usage(("unknown flag " + arg).c_str());
    } else {
      request.paths.push_back(arg);
    }
  }
  if (request.paths.empty() && request.compile_commands.empty()) {
    usage("nothing to lint (need paths, --compile-commands or --list-rules)");
  }

  try {
    const diag::Report report = srclint::run_lint(request);
    if (format == "json") {
      std::printf("%s\n", diag::to_sarif(report, "pobp_srclint").c_str());
    } else {
      std::printf("%s", diag::to_text(report).c_str());
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
