#!/usr/bin/env bash
# Regenerates the checked-in perf baselines in bench/baselines/ from the
# current tree's Release build.  Run after an *intentional* perf change,
# review the diff (allocs/op should only ever go down), and commit the
# result; tools/ci_check.sh's perf stage gates every later run against
# these files via tools/bench_compare.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" \
  --target bench_engine_throughput bench_runtime bench_compare

build-release/bench/bench_engine_throughput --instances 32 --repeats 2 \
  --dup-rate 0.5 --json bench/baselines/BENCH_engine.json

build-release/bench/bench_runtime \
  --benchmark_filter="$(cat bench/baselines/runtime_filter.txt)" \
  --benchmark_out=bench/baselines/BENCH_runtime.json \
  --benchmark_out_format=json > /dev/null

echo "baselines refreshed:"
ls -l bench/baselines/
